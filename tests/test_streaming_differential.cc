// Differential battery for the streaming observables engine
// (analysis/streaming.h): after EVERY mutation of a fuzzed sequence, each
// streaming observable must equal the batch recompute — cluster counts,
// largest cluster, and interface bitwise (analysis/clusters.h), the
// spatial pair correlation bitwise against analysis/correlation.h (both
// sides are exact integer arithmetic underneath), and the magnetization
// time-autocovariance bitwise against the batch autocovariance()
// reference. Mutation sources cover every model policy's alphabet and
// event path:
//
//  * SchellingModel (dense Moore + sparse von Neumann asymmetric) and
//    ComfortModel through the engine FlipObserver hook,
//  * Kawasaki swap dynamics through the observer — including the
//    tentative flip/revert probes of swap_improves(),
//  * vacancy ({-1, 0, +1}) and multi-type ({0..q-1}) alphabets through
//    apply_set(),
//  * the PR 2 golden-trajectory Glauber fixture (streaming must not
//    perturb the trajectory: the golden hash is re-asserted), and
//  * the sharded parallel engine at 1 and 4 stripes and 1/2/4 threads
//    through ParallelOptions::streaming.
#include <vector>

#include <gtest/gtest.h>

#include "analysis/clusters.h"
#include "analysis/correlation.h"
#include "analysis/streaming.h"
#include "core/comfort.h"
#include "core/dynamics.h"
#include "core/kawasaki.h"
#include "core/model.h"
#include "core/parallel_dynamics.h"
#include "golden_fixtures.h"
#include "lattice/sharded.h"
#include "rng/rng.h"
#include "rng/splitmix64.h"

namespace seg {
namespace {

constexpr int kFuzzSteps = 1000;

// Asserts every streaming observable against its batch recompute.
void expect_matches_batch(const StreamingObservables& obs,
                          const char* what, int step) {
  const int n = obs.side();
  const ClusterStats batch = cluster_stats(obs.field(), n);
  const ClusterStats streamed = obs.cluster_stats();
  ASSERT_EQ(streamed.cluster_count, batch.cluster_count)
      << what << " step " << step;
  ASSERT_EQ(streamed.largest_cluster, batch.largest_cluster)
      << what << " step " << step;
  ASSERT_EQ(streamed.interface_length, batch.interface_length)
      << what << " step " << step;
  ASSERT_DOUBLE_EQ(streamed.mean_cluster_size, batch.mean_cluster_size)
      << what << " step " << step;

  std::int64_t sum = 0;
  std::int64_t plus = 0;
  std::int64_t zero = 0;
  for (const std::int8_t v : obs.field()) {
    sum += v;
    plus += v == 1;
    zero += v == 0;
  }
  ASSERT_EQ(obs.magnetization(), sum) << what << " step " << step;
  ASSERT_EQ(obs.count_of(1), plus) << what << " step " << step;
  ASSERT_EQ(obs.vacancy_count(), zero) << what << " step " << step;

  if (obs.max_r() > 0) {
    const std::vector<double> batch_c =
        pair_correlation(obs.field(), n, obs.max_r());
    const std::vector<double> streamed_c = obs.pair_correlation();
    ASSERT_EQ(batch_c.size(), streamed_c.size());
    for (std::size_t r = 0; r < batch_c.size(); ++r) {
      // Integer accumulators on both sides: bitwise equality, which is
      // stronger than the 1e-12 relative bar.
      ASSERT_EQ(batch_c[r], streamed_c[r])
          << what << " step " << step << " r " << r;
    }
  }
}

TEST(StreamingDifferential, SchellingEngineObserverFuzz) {
  struct Config {
    ModelParams params;
    std::uint64_t seed;
    const char* what;
  };
  const Config configs[] = {
      {{.n = 32, .w = 2, .tau = 0.45, .p = 0.5}, 41001, "moore"},
      {{.n = 24, .w = 3, .tau = 0.4, .p = 0.5, .tau_minus = 0.6,
        .shape = NeighborhoodShape::kVonNeumann},
       41002,
       "von_neumann_asym"},
  };
  for (const Config& config : configs) {
    Rng rng(config.seed);
    SchellingModel model(config.params, rng);
    StreamingConfig cfg;
    cfg.max_r = 6;
    StreamingObservables obs(model.spins(), config.params.n, cfg);
    model.set_flip_observer(&obs);
    for (int step = 0; step < kFuzzSteps; ++step) {
      model.flip(static_cast<std::uint32_t>(
          rng.uniform_below(model.agent_count())));
      ASSERT_EQ(obs.field(), model.spins()) << config.what << " " << step;
      expect_matches_batch(obs, config.what, step);
    }
  }
}

TEST(StreamingDifferential, ComfortEngineObserverFuzz) {
  const ComfortParams params{
      .n = 24, .w = 2, .tau_lo = 0.4, .tau_hi = 0.8, .p = 0.5};
  Rng rng(42001);
  ComfortModel model(params, rng);
  StreamingConfig cfg;
  cfg.max_r = 5;
  StreamingObservables obs(model.spins(), params.n, cfg);
  model.set_flip_observer(&obs);
  for (int step = 0; step < kFuzzSteps; ++step) {
    model.flip(static_cast<std::uint32_t>(
        rng.uniform_below(model.agent_count())));
    ASSERT_EQ(obs.field(), model.spins()) << step;
    expect_matches_batch(obs, "comfort", step);
  }
}

TEST(StreamingDifferential, VacancyAlphabetFuzz) {
  const int n = 24;
  Rng rng(43001);
  std::vector<std::int8_t> field(static_cast<std::size_t>(n) * n);
  for (auto& v : field) {
    v = static_cast<std::int8_t>(static_cast<int>(rng.uniform_below(3)) - 1);
  }
  StreamingConfig cfg;
  cfg.max_r = 6;
  StreamingObservables obs(field, n, cfg);
  for (int step = 0; step < kFuzzSteps; ++step) {
    const auto id =
        static_cast<std::uint32_t>(rng.uniform_below(field.size()));
    const auto value = static_cast<std::int8_t>(
        static_cast<int>(rng.uniform_below(3)) - 1);
    obs.apply_set(id, value);  // no-op half the time: also covered
    expect_matches_batch(obs, "vacancy", step);
  }
}

TEST(StreamingDifferential, MultiTypeAlphabetFuzz) {
  const int n = 20;
  constexpr int kTypes = 4;
  Rng rng(44001);
  std::vector<std::int8_t> field(static_cast<std::size_t>(n) * n);
  for (auto& v : field) {
    v = static_cast<std::int8_t>(rng.uniform_below(kTypes));
  }
  // Multi-type values are labels, not spins: the spin-style aggregates
  // are meaningless but must still track exactly; clusters/interface are
  // the real observables here.
  StreamingObservables obs(field, n);
  for (int step = 0; step < kFuzzSteps; ++step) {
    const auto id =
        static_cast<std::uint32_t>(rng.uniform_below(field.size()));
    obs.apply_set(id,
                  static_cast<std::int8_t>(rng.uniform_below(kTypes)));
    expect_matches_batch(obs, "multitype", step);
  }
}

// Kawasaki dynamics drives the engine through swap_improves(), whose
// tentative flip + revert probes also fire the observer; the streaming
// state must come back exactly after every revert.
TEST(StreamingDifferential, KawasakiObserverIncludingTentativeProbes) {
  ModelParams params{.n = 32, .w = 2, .tau = 0.4, .p = 0.5};
  Rng init(45001);
  SchellingModel model(params, init);
  StreamingObservables obs(model.spins(), params.n);
  model.set_flip_observer(&obs);
  Rng dyn(45002);
  KawasakiOptions options;
  options.max_swaps = 400;
  const KawasakiResult result = run_kawasaki(model, dyn, options);
  EXPECT_GT(result.proposals, result.swaps);
  ASSERT_EQ(obs.field(), model.spins());
  expect_matches_batch(obs, "kawasaki", static_cast<int>(result.swaps));

  // The observer consumed no RNG and perturbed nothing: a twin run
  // without it lands on the identical configuration.
  Rng init2(45001);
  SchellingModel twin(params, init2);
  Rng dyn2(45002);
  run_kawasaki(twin, dyn2, options);
  EXPECT_EQ(twin.spins(), model.spins());
}

// PR 2 golden fixture: attaching the streaming engine must not perturb
// the trajectory (hash from tests/test_golden_trajectory.cc), and the
// final streaming state must equal batch.
TEST(StreamingDifferential, GoldenGlauberFixtureUnperturbed) {
  ModelParams p{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(1001, 0);
  SchellingModel m(p, init);
  StreamingConfig cfg;
  cfg.max_r = 8;
  cfg.autocorr_window = 32;
  StreamingObservables obs(m.spins(), p.n, cfg);
  m.set_flip_observer(&obs);
  Rng dyn = Rng::stream(1001, 1);
  const RunResult r = run_glauber(m, dyn);
  EXPECT_TRUE(r.terminated);

  std::uint64_t h = golden::hash_bytes(m.spins().data(), m.spins().size());
  h = golden::mix(h, r.flips);
  h = golden::mix_double(h, r.final_time);
  EXPECT_EQ(h, golden::kGlauber);

  ASSERT_EQ(obs.field(), m.spins());
  expect_matches_batch(obs, "golden", static_cast<int>(r.flips));
}

// Sharded parallel engine: the per-shard event logs replayed at the
// reconciliation barriers must land the streaming engine exactly on the
// final configuration — at 1 and 4 stripes, and invariant across thread
// counts for a fixed shard count.
TEST(StreamingDifferential, ShardedEventReplayAtAnyThreadCount) {
  ModelParams params{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
  const std::uint64_t seed = 46001;
  for (const int shards : {1, 4}) {
    std::vector<std::int8_t> reference_spins;
    ClusterStats reference_stats;
    for (const std::size_t threads : {1u, 2u, 4u}) {
      Rng init = Rng::stream(seed, 0);
      SchellingModel model(
          params, init,
          ShardLayout::stripes(params.n, params.w, shards));
      StreamingObservables obs(model.spins(), params.n);
      ParallelOptions options;
      options.threads = threads;
      options.streaming = &obs;
      const ParallelRunResult r =
          run_parallel_glauber(model, mix_seed(seed, 1), options);
      EXPECT_TRUE(r.terminated);
      ASSERT_EQ(obs.field(), model.spins())
          << shards << " shards, " << threads << " threads";
      expect_matches_batch(obs, "sharded", shards * 100 +
                                               static_cast<int>(threads));
      if (reference_spins.empty()) {
        reference_spins = model.spins();
        reference_stats = obs.cluster_stats();
      } else {
        // Thread-count invariance of both trajectory and observables.
        EXPECT_EQ(model.spins(), reference_spins);
        EXPECT_EQ(obs.cluster_stats().cluster_count,
                  reference_stats.cluster_count);
        EXPECT_EQ(obs.cluster_stats().largest_cluster,
                  reference_stats.largest_cluster);
        EXPECT_EQ(obs.cluster_stats().interface_length,
                  reference_stats.interface_length);
      }
    }
  }
}

// The ring-buffer time autocovariance must match the batch reference on
// the recorded magnetization series, bitwise, at every prefix length —
// including prefixes shorter and longer than the window.
TEST(StreamingDifferential, AutocovarianceMatchesBatchReference) {
  const int n = 24;
  constexpr std::size_t kWindow = 12;
  Rng rng(47001);
  std::vector<std::int8_t> field(static_cast<std::size_t>(n) * n);
  for (auto& v : field) v = rng.bernoulli(0.5) ? 1 : -1;
  StreamingConfig cfg;
  cfg.autocorr_window = kWindow;
  StreamingObservables obs(field, n, cfg);
  std::vector<double> series;
  for (int step = 0; step < 200; ++step) {
    for (int f = 0; f < 5; ++f) {
      obs.apply_flip(static_cast<std::uint32_t>(
          rng.uniform_below(field.size())));
    }
    obs.record_sample();
    series.push_back(static_cast<double>(obs.magnetization()));
    const std::size_t max_lag =
        std::min(series.size() - 1, kWindow - 1);
    const std::vector<double> batch = autocovariance(series, max_lag);
    for (std::size_t lag = 0; lag <= max_lag; ++lag) {
      ASSERT_EQ(batch[lag], obs.autocovariance(lag))
          << "step " << step << " lag " << lag;
    }
    if (obs.autocovariance(0) != 0.0) {
      ASSERT_DOUBLE_EQ(obs.autocorrelation(1),
                       obs.autocovariance(1) / obs.autocovariance(0));
    }
  }
  EXPECT_EQ(obs.samples_recorded(), series.size());
}

// Out-of-range lags and the empty stream are well-defined zeros.
TEST(StreamingDifferential, AutocovarianceEdgeLags) {
  StreamingConfig cfg;
  cfg.autocorr_window = 4;
  std::vector<std::int8_t> field(16, 1);
  StreamingObservables obs(field, 4, cfg);
  EXPECT_EQ(obs.autocovariance(0), 0.0);  // no samples yet
  obs.record_sample();
  EXPECT_EQ(obs.autocovariance(1), 0.0);  // lag >= sample count
  for (int i = 0; i < 10; ++i) obs.record_sample();
  EXPECT_EQ(obs.autocovariance(4), 0.0);  // lag >= window
  EXPECT_EQ(obs.autocovariance(0), 0.0);  // constant series
}

}  // namespace
}  // namespace seg
