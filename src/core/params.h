// Model parameters for the Schelling / zero-temperature Ising-Glauber
// process of the paper (Sec. II-A).
//
// An n x n grid on a torus; every site holds an agent of type +1 or -1,
// drawn i.i.d. with P(+1) = p. The neighborhood of an agent is the
// l-infinity ball of radius w ("horizon"), of size N = (2w+1)^2 including
// the agent itself. An agent is happy iff the fraction of same-type agents
// in its neighborhood is at least the intolerance tau; the integer
// happiness threshold is K = ceil(tau N) same-type agents.
//
// The asymmetric variant of Barmpalias-Elwes-Lewis-Pye [26] gives each
// type its own intolerance: set tau_minus >= 0 to let (-1) agents use a
// different threshold than (+1) agents (tau_minus < 0, the default, means
// both types share `tau`).
#pragma once

#include <cassert>

#include "lattice/storage.h"
#include "theory/bounds.h"

namespace seg {

// The neighborhood geometry. The paper uses the extended Moore
// neighborhood (l-infinity ball, size (2w+1)^2); the von Neumann variant
// (l1 ball / diamond, size 2w(w+1)+1) is provided as an ablation of that
// modeling choice.
enum class NeighborhoodShape { kMoore, kVonNeumann };

struct ModelParams {
  int n = 64;         // grid side
  int w = 2;          // horizon (neighborhood radius)
  double tau = 0.45;  // intolerance threshold in [0, 1] (type +1, and
                      // type -1 unless tau_minus is set)
  double p = 0.5;     // initial Bernoulli parameter for type +1
  double tau_minus = -1.0;  // optional separate intolerance for type -1
  NeighborhoodShape shape = NeighborhoodShape::kMoore;
  // Engine storage backend; kDefault resolves to the build default
  // (packed unless -DSEG_PACKED_DEFAULT=OFF). Trajectories are bitwise
  // identical under either backend — this only selects the layout.
  EngineStorage storage = EngineStorage::kDefault;

  int neighborhood_size() const {
    return shape == NeighborhoodShape::kMoore
               ? (2 * w + 1) * (2 * w + 1)
               : 2 * w * (w + 1) + 1;
  }

  double tau_of(int type) const {
    return (type < 0 && tau_minus >= 0.0) ? tau_minus : tau;
  }

  // Happiness threshold for the given agent type (+1 or -1).
  int happy_threshold_of(int type) const {
    return happiness_threshold(tau_of(type), neighborhood_size());
  }

  // Symmetric-model convenience (both types share tau).
  int happy_threshold() const {
    return happiness_threshold(tau, neighborhood_size());
  }

  bool symmetric() const { return tau_minus < 0.0 || tau_minus == tau; }

  bool valid() const {
    return n > 0 && w >= 1 && 2 * w + 1 <= n && tau >= 0.0 && tau <= 1.0 &&
           p >= 0.0 && p <= 1.0 && (tau_minus < 0.0 || tau_minus <= 1.0);
  }
};

}  // namespace seg
