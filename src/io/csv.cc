#include "io/csv.h"

#include <cstdio>

namespace seg {

CsvWriter::CsvWriter(std::vector<std::string> header)
    : columns_(header.size()) {
  std::string line;
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (i > 0) line += ',';
    line += escape(header[i]);
  }
  header_line_ = std::move(line);
}

CsvWriter& CsvWriter::new_row() {
  if (rows_ > 0 || fields_in_row_ > 0) {
    while (fields_in_row_ < columns_) {
      if (fields_in_row_ > 0) body_ << ',';
      ++fields_in_row_;
    }
    body_ << '\n';
  }
  fields_in_row_ = 0;
  ++rows_;
  return *this;
}

CsvWriter& CsvWriter::add(const std::string& value) {
  if (fields_in_row_ > 0) body_ << ',';
  body_ << escape(value);
  ++fields_in_row_;
  return *this;
}

CsvWriter& CsvWriter::add(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  return add(std::string(buf));
}

CsvWriter& CsvWriter::add(std::int64_t value) {
  return add(std::to_string(value));
}

std::string CsvWriter::str() const {
  std::string out = header_line_;
  out += '\n';
  out += body_.str();
  if (fields_in_row_ > 0) out += '\n';
  return out;
}

bool CsvWriter::write_file(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::string doc = str();
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const bool ok = (written == doc.size()) && (std::fclose(f) == 0);
  if (written != doc.size()) std::fclose(f);
  return ok;
}

std::string CsvWriter::escape(const std::string& value) {
  const bool needs_quotes =
      value.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return value;
  std::string out = "\"";
  for (char c : value) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace seg
