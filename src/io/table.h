// Aligned plain-text table printer for the bench harnesses, so each
// reproduced figure prints as a readable table of rows/series.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace seg {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  TablePrinter& new_row();
  TablePrinter& add(const std::string& value);
  TablePrinter& add(double value, int precision = 4);
  TablePrinter& add(std::int64_t value);

  // Renders with a header rule and right-padded columns.
  std::string str() const;

  // Convenience: render to stdout.
  void print() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace seg
