#include "renorm/blocks.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "grid/prefix_sum.h"

namespace seg {

BlockGrid::BlockGrid(const std::vector<std::int8_t>& spins, int n,
                     const BlockParams& params)
    : params_(params), n_(n) {
  assert(n > 0 && params.block_side > 0 && params.w_block_side > 0);
  assert(n % params.block_side == 0);
  assert(params.eps > 0.0 && params.eps < 0.5);
  blocks_per_side_ = n / params.block_side;
  good_.assign(static_cast<std::size_t>(blocks_per_side_) * blocks_per_side_,
               1);

  // Count of (-1) agents per rectangle via one prefix sum.
  std::vector<std::int32_t> minus_indicator(spins.size());
  for (std::size_t i = 0; i < spins.size(); ++i) {
    minus_indicator[i] = spins[i] < 0 ? 1 : 0;
  }
  const PrefixSum2D minus_prefix(minus_indicator, n);

  const int bs = params.block_side;
  const int ws = std::min(params.w_block_side, bs);
  const double threshold = deviation_threshold();

  for (int by = 0; by < blocks_per_side_; ++by) {
    for (int bx = 0; bx < blocks_per_side_; ++bx) {
      const int x0 = bx * bs;
      const int y0 = by * bs;
      bool is_good = true;
      // Slide a ws x ws window so that it overlaps the block in every
      // possible way; the intersection rectangle is the clipped window.
      for (int oy = -(ws - 1); oy < bs && is_good; ++oy) {
        const int ry0 = std::max(0, oy);
        const int ry1 = std::min(bs - 1, oy + ws - 1);
        const int height = ry1 - ry0 + 1;
        for (int ox = -(ws - 1); ox < bs && is_good; ++ox) {
          const int rx0 = std::max(0, ox);
          const int rx1 = std::min(bs - 1, ox + ws - 1);
          const std::int64_t size =
              static_cast<std::int64_t>(rx1 - rx0 + 1) * height;
          const std::int64_t minus = minus_prefix.rect_sum(
              x0 + rx0, y0 + ry0, x0 + rx1, y0 + ry1);
          const double dev =
              static_cast<double>(minus) - static_cast<double>(size) / 2.0;
          if (dev >= threshold) {
            is_good = false;
          } else if (params_.two_sided && -dev >= threshold) {
            is_good = false;
          }
        }
      }
      const std::size_t bi =
          static_cast<std::size_t>(by) * blocks_per_side_ + bx;
      good_[bi] = is_good ? 1 : 0;
      good_count_ += is_good;
    }
  }
}

bool BlockGrid::good(int bx, int by) const {
  assert(bx >= 0 && bx < blocks_per_side_ && by >= 0 &&
         by < blocks_per_side_);
  return good_[static_cast<std::size_t>(by) * blocks_per_side_ + bx] != 0;
}

double BlockGrid::bad_fraction() const {
  return static_cast<double>(bad_count()) /
         static_cast<double>(good_.size());
}

double BlockGrid::deviation_threshold() const {
  return std::pow(static_cast<double>(params_.dynamics_N),
                  0.5 + params_.eps);
}

}  // namespace seg
