// Two-point spin correlations and the segregation length scale.
//
// C(r) = <s(x) s(x + r e)> - <s>^2 averaged over sites and over the four
// lattice directions (two axes, two diagonals with l-infinity norm r).
// After the process terminates, C decays on the scale of the segregated
// regions; the correlation length (first crossing of C(0)/e) is a
// resolution-independent companion to the region-size metrics of
// Theorems 1-2.
#pragma once

#include <cstdint>
#include <vector>

namespace seg {

// C(r) for r = 0..max_r on the torus (spins +1/-1). O(n^2 max_r).
std::vector<double> pair_correlation(const std::vector<std::int8_t>& spins,
                                     int n, int max_r);

// First r (linearly interpolated) where C(r) drops below C(0)/e; returns
// max_r if it never does. C must be a pair_correlation() output.
double correlation_length(const std::vector<double>& c);

// Time autocovariance of a scalar series (e.g. per-sweep magnetization):
//
//   gamma(l) = (1/(T-l)) * sum_{t=l}^{T-1} (x[t] - mean)(x[t-l] - mean)
//
// with `mean` over the whole series. Returned for l = 0..max_lag; lags
// with T - l <= 0 report 0. This is the batch reference for the
// streaming ring-buffer tracker (analysis/streaming.h): for
// integer-valued series both evaluate the same closed form over exactly
// represented sums, so they agree bitwise.
std::vector<double> autocovariance(const std::vector<double>& series,
                                   std::size_t max_lag);

}  // namespace seg
