// PERC — the two percolation theorems the paper leans on:
//
// (Thm 4, Garet-Marchand): supercritical chemical distance. The stretch
// D(0,x)/||x||_1 concentrates near a constant that tends to 1 as p -> 1;
// the probability of a (1+alpha)-stretch decays exponentially. We sweep p
// above criticality and report mean stretch and the tail frequency.
//
// (Thm 5, Grimmett 5.4): subcritical cluster-radius decay. We estimate
// P(radius >= k) at sub-critical p and fit the exponential decay rate
// psi(p); the fit should be near-linear in k on a log scale and steeper
// for smaller p.
#include <cmath>
#include <cstdio>
#include <vector>

#include "io/table.h"
#include "percolation/chemical.h"
#include "percolation/clusters.h"
#include "percolation/field.h"
#include "util/args.h"
#include "util/stats.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 31));

  std::printf("== Theorem 4 (chemical distance, supercritical) ==\n");
  const int L = static_cast<int>(args.get_int("L", 192));
  const auto pair_trials =
      static_cast<std::size_t>(args.get_int("pairs", 24));
  seg::TablePrinter t4({"p", "connected", "mean stretch",
                        "P(stretch >= 1.25)"});
  for (const double p : {0.65, 0.70, 0.75, 0.85, 0.95}) {
    seg::RunningStats stretch;
    std::size_t connected = 0, tail = 0;
    seg::Rng rng = seg::Rng::stream(seed, static_cast<std::uint64_t>(p * 100));
    for (std::size_t t = 0; t < pair_trials; ++t) {
      const seg::SiteField field(L, p, rng);
      const auto s =
          seg::chemical_stretch(field, L / 8, L / 2, 7 * L / 8, L / 2);
      if (!s.connected) continue;
      ++connected;
      stretch.add(s.stretch);
      tail += s.stretch >= 1.25;
    }
    t4.new_row()
        .add(p, 2)
        .add(static_cast<std::int64_t>(connected))
        .add(connected ? stretch.mean() : 0.0, 4)
        .add(connected ? static_cast<double>(tail) /
                             static_cast<double>(connected)
                       : 0.0,
             3);
  }
  t4.print();
  std::printf("expected shape: stretch decreasing toward 1 and the 1.25-"
              "tail vanishing as p grows.\n\n");

  std::printf("== Theorem 5 (cluster-radius decay, subcritical) ==\n");
  const int Lsub = static_cast<int>(args.get_int("Lsub", 61));
  const auto radius_trials =
      static_cast<std::size_t>(args.get_int("radius_trials", 400));
  seg::TablePrinter t5({"p", "P(r>=2)", "P(r>=4)", "P(r>=8)", "P(r>=16)",
                        "decay rate psi"});
  for (const double p : {0.30, 0.40, 0.50}) {
    std::vector<int> ks{2, 4, 8, 16};
    std::vector<std::size_t> hits(ks.size(), 0);
    std::size_t open_draws = 0;
    seg::Rng rng =
        seg::Rng::stream(seed + 7, static_cast<std::uint64_t>(p * 100));
    for (std::size_t t = 0; t < radius_trials; ++t) {
      const seg::SiteField field(Lsub, p, rng);
      const int r = seg::cluster_l1_radius(field, Lsub / 2, Lsub / 2);
      if (r < 0) continue;  // center closed: not a cluster sample
      ++open_draws;
      for (std::size_t i = 0; i < ks.size(); ++i) hits[i] += r >= ks[i];
    }
    t5.new_row().add(p, 2);
    std::vector<double> xs, logs;
    for (std::size_t i = 0; i < ks.size(); ++i) {
      const double frac = open_draws
                              ? static_cast<double>(hits[i]) /
                                    static_cast<double>(open_draws)
                              : 0.0;
      t5.add(frac, 4);
      if (frac > 0) {
        xs.push_back(ks[i]);
        logs.push_back(std::log(frac));
      }
    }
    const seg::LinearFit fit = seg::fit_line(xs, logs);
    t5.add(-fit.slope, 4);
  }
  t5.print();
  std::printf("expected shape: exponential tails, with the decay rate psi "
              "decreasing as p approaches p_c ~ %.3f from below.\n",
              seg::kSiteCriticalP);
  return 0;
}
