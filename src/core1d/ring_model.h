// One-dimensional Schelling segregation on a ring — the baseline setting
// of Brandt et al. [23] (Kawasaki, tau = 1/2: polynomial run lengths) and
// Barmpalias et al. [24] (transitions at tau* ~ 0.35; Glauber symmetric
// around 1/2). The paper's Sec. I-B background compares against these
// results; this module reproduces them empirically.
//
// Each of the n sites of a ring holds a +1/-1 agent; the neighborhood of
// an agent is the 2w+1 window centered on it (self included). Happiness
// and flippability are defined exactly as in the 2-D model.
#pragma once

#include <cstdint>
#include <vector>

#include "rng/rng.h"

namespace seg {

struct RingParams {
  int n = 1 << 12;    // ring size
  int w = 4;          // window radius; neighborhood size 2w+1
  double tau = 0.5;   // intolerance
  double p = 0.5;     // initial Bernoulli parameter for +1

  int neighborhood_size() const { return 2 * w + 1; }
  bool valid() const {
    return n > 0 && w >= 1 && 2 * w + 1 <= n && tau >= 0.0 && tau <= 1.0;
  }
};

class RingModel {
 public:
  RingModel(const RingParams& params, Rng& rng);
  RingModel(const RingParams& params, std::vector<std::int8_t> spins);

  const RingParams& params() const { return params_; }
  int size() const { return params_.n; }
  int happy_threshold() const { return K_; }

  std::int8_t spin(int i) const { return spins_[wrap(i)]; }
  const std::vector<std::int8_t>& spins() const { return spins_; }

  std::int32_t same_count(int i) const;
  bool is_happy(int i) const { return same_count(i) >= K_; }
  bool flip_makes_happy(int i) const;
  bool is_flippable(int i) const {
    return !is_happy(i) && flip_makes_happy(i);
  }

  std::size_t flippable_count() const { return flip_items_.size(); }
  bool terminated() const { return flip_items_.empty(); }
  const std::vector<std::uint32_t>& flippable_items() const {
    return flip_items_;
  }

  void flip(int i);

  // Runs Glauber dynamics to absorption (or max_flips); returns the number
  // of flips performed.
  std::uint64_t run_glauber(Rng& rng,
                            std::uint64_t max_flips = ~std::uint64_t{0});

  // Lengths of the maximal monochromatic arcs ("run lengths"); a fully
  // monochromatic ring reports a single run of length n.
  std::vector<int> run_lengths() const;

  // Mean run length; the 1-D literature's segregation statistic.
  double mean_run_length() const;

  bool check_invariants() const;

 private:
  int wrap(int i) const {
    i %= params_.n;
    return i < 0 ? i + params_.n : i;
  }
  void refresh_membership(int i);
  void set_insert(std::uint32_t i);
  void set_erase(std::uint32_t i);

  RingParams params_;
  int N_;
  int K_;
  std::vector<std::int8_t> spins_;
  std::vector<std::int32_t> plus_count_;
  // Compact O(1) insert/erase/sample index set of flippable agents.
  static constexpr std::uint32_t kAbsent = 0xffffffffu;
  std::vector<std::uint32_t> flip_items_;
  std::vector<std::uint32_t> flip_pos_;
};

}  // namespace seg
