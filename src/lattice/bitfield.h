// One-bit-per-site spin storage for the packed engine backend.
//
// Layout: row-major torus rows, each padded to whole 64-bit words
// (words_per_row = ceil(n / 64)); bit x of row y is bit (x & 63) of word
// (y * words_per_row + x / 64), set iff the spin is +1. Padding bits
// beyond column n - 1 are kept zero so whole-word popcounts never need a
// row-tail mask beyond the interval being counted.
//
// Concurrency: the sharded sweep engine flips interior sites of distinct
// shards from different threads. Distinct sites can share a word when a
// checkerboard layout cuts columns at a non-64-aligned offset, so the
// engine switches those flips to flip_atomic() (a relaxed fetch-xor).
// All reads go through relaxed atomic loads, which compile to plain MOVs
// on every target we build for — zero cost serially, and no torn/UB reads
// next to a concurrent fetch-xor on the same word.
//
// SEG_NO_POPCNT (CMake option) replaces std::popcount with a portable
// SWAR reduction for targets without a popcount instruction; the CI
// portable-build job runs the differential + fuzz batteries against it.
#pragma once

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace seg {

inline int popcount64(std::uint64_t x) {
#if defined(SEG_NO_POPCNT)
  // SWAR bit-count (Hacker's Delight 5-2): no hardware popcount needed.
  x = x - ((x >> 1) & 0x5555555555555555ull);
  x = (x & 0x3333333333333333ull) + ((x >> 2) & 0x3333333333333333ull);
  x = (x + (x >> 4)) & 0x0f0f0f0f0f0f0f0full;
  return static_cast<int>((x * 0x0101010101010101ull) >> 56);
#else
  return std::popcount(x);
#endif
}

class BitField {
 public:
  BitField() = default;

  // All-minus (all bits clear) field of side n.
  explicit BitField(int n)
      : n_(n),
        words_per_row_((n + 63) / 64),
        words_(static_cast<std::size_t>(n) * words_per_row_, 0) {
    assert(n > 0);
  }

  // Packs a +1/-1 spin field (bit set iff spin > 0).
  BitField(const std::vector<std::int8_t>& spins, int n) : BitField(n) {
    assert(spins.size() == static_cast<std::size_t>(n) * n);
    for (int y = 0; y < n; ++y) {
      const std::int8_t* src = spins.data() + static_cast<std::size_t>(y) * n;
      std::uint64_t* dst = words_.data() + row_offset(y);
      for (int x = 0; x < n; ++x) {
        dst[x >> 6] |= static_cast<std::uint64_t>(src[x] > 0)
                       << (x & 63);
      }
    }
  }

  int side() const { return n_; }
  int words_per_row() const { return words_per_row_; }
  bool empty() const { return n_ == 0; }
  const std::uint64_t* row_words(int y) const {
    return words_.data() + row_offset(y);
  }

  bool test(std::uint32_t id) const {
    const std::uint32_t x = id % static_cast<std::uint32_t>(n_);
    return ((load_word(word_index(id)) >> (x & 63u)) & 1u) != 0;
  }
  std::int8_t spin(std::uint32_t id) const { return test(id) ? 1 : -1; }

  void flip(std::uint32_t id) { words_[word_index(id)] ^= bit_of(id); }
  // Relaxed fetch-xor for flips whose word may be shared with another
  // shard's concurrent flip (see the concurrency note above).
  void flip_atomic(std::uint32_t id) {
    __atomic_fetch_xor(&words_[word_index(id)], bit_of(id),
                       __ATOMIC_RELAXED);
  }

  void assign(std::uint32_t id, bool plus) {
    std::uint64_t& w = words_[word_index(id)];
    const std::uint64_t bit = bit_of(id);
    w = plus ? (w | bit) : (w & ~bit);
  }

  // +1 count over the wrapped column interval [x0, x0 + len) of row y;
  // requires 0 <= x0 < n and 0 < len <= n. Masked popcounts over the
  // covered words — no per-cell iteration.
  std::int32_t count_row(int y, int x0, int len) const {
    assert(y >= 0 && y < n_ && x0 >= 0 && x0 < n_ && len > 0 && len <= n_);
    const std::uint64_t* row = words_.data() + row_offset(y);
    const int end = x0 + len;
    if (end <= n_) return count_segment(row, x0, end);
    return count_segment(row, x0, n_) + count_segment(row, 0, end - n_);
  }

  // Total +1 count (padding bits are invariantly zero).
  std::int64_t count_all() const {
    std::int64_t total = 0;
    for (const std::uint64_t w : words_) total += popcount64(w);
    return total;
  }

  std::vector<std::int8_t> unpack() const {
    std::vector<std::int8_t> spins(static_cast<std::size_t>(n_) * n_);
    for (int y = 0; y < n_; ++y) {
      const std::uint64_t* src = words_.data() + row_offset(y);
      std::int8_t* dst = spins.data() + static_cast<std::size_t>(y) * n_;
      for (int x = 0; x < n_; ++x) {
        dst[x] = (src[x >> 6] >> (x & 63)) & 1u ? 1 : -1;
      }
    }
    return spins;
  }

  friend bool operator==(const BitField& a, const BitField& b) {
    return a.n_ == b.n_ && a.words_ == b.words_;
  }

 private:
  std::size_t row_offset(int y) const {
    return static_cast<std::size_t>(y) * words_per_row_;
  }
  std::size_t word_index(std::uint32_t id) const {
    const std::uint32_t n = static_cast<std::uint32_t>(n_);
    return static_cast<std::size_t>(id / n) * words_per_row_ +
           ((id % n) >> 6);
  }
  std::uint64_t bit_of(std::uint32_t id) const {
    const std::uint32_t x = id % static_cast<std::uint32_t>(n_);
    return 1ull << (x & 63u);
  }
  std::uint64_t load_word(std::size_t i) const {
    return __atomic_load_n(&words_[i], __ATOMIC_RELAXED);
  }

  // Popcount of row bits [a, b), no wrap; 0 <= a < b <= n.
  std::int32_t count_segment(const std::uint64_t* row, int a, int b) const {
    const int wa = a >> 6;
    const int wb = (b - 1) >> 6;
    const std::uint64_t head = ~0ull << (a & 63);
    const std::uint64_t tail = ~0ull >> (63 - ((b - 1) & 63));
    const std::uint64_t* base = row + wa;
    if (wa == wb) {
      return popcount64(__atomic_load_n(base, __ATOMIC_RELAXED) & head &
                        tail);
    }
    std::int32_t c = popcount64(__atomic_load_n(base, __ATOMIC_RELAXED) &
                                head);
    for (int wi = wa + 1; wi < wb; ++wi) {
      c += popcount64(__atomic_load_n(row + wi, __ATOMIC_RELAXED));
    }
    return c + popcount64(__atomic_load_n(row + wb, __ATOMIC_RELAXED) &
                          tail);
  }

  int n_ = 0;
  int words_per_row_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace seg
