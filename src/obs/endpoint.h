// The campaign observatory endpoint: an embedded HTTP server exposing
// the telemetry registry and live campaign state on loopback.
//
// Routes:
//   GET /metrics       Prometheus text format 0.0.4 (obs/exposition.h)
//   GET /healthz       "ok\n" — liveness probe
//   GET /progress      newest progress record as a JSON object ("{}"
//                      until a ProgressReporter is attached and ticks)
//   GET /debug/flight  flight-recorder dump (only when debug routes are
//                      enabled; 404 otherwise)
//
// Every handler reads snapshots only — registry snapshot, latest
// progress string, flight-recorder ring loads. None touches an RNG
// stream or any simulation state, so a live scraper cannot perturb a
// trajectory (pinned by tests/test_metrics_endpoint.cc against the
// frozen golden hashes).
//
// Port 0 binds an ephemeral port; read the actual one back with
// port(). The campaign runner prints it to stderr and records it in
// the manifest so scrapers of short-lived runs can find it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace seg::obs {

struct MetricsServerOptions {
  // Source of the /progress body (a JSON object string). Unset serves
  // "{}". The campaign runner wires ProgressReporter::latest_record.
  std::function<std::string()> progress_json;
  // Expose /debug/flight (off by default: dumps are a debugging
  // surface, not part of the stable scrape contract).
  bool debug_routes = false;
};

class MetricsServer {
 public:
  explicit MetricsServer(MetricsServerOptions options = {});
  ~MetricsServer();  // implies stop()
  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  // Binds 127.0.0.1:port (0 = ephemeral) and starts serving. False on
  // failure with *error describing why.
  bool start(std::uint16_t port, std::string* error = nullptr);
  void stop();
  bool running() const;
  std::uint16_t port() const;

 private:
  struct Impl;
  Impl* impl_;
};

}  // namespace seg::obs
