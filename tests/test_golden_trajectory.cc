// Golden-seed trajectory regression: the lattice-engine ports of all five
// model variants must reproduce the pre-refactor implementations bit for
// bit — same flips, same RNG consumption, same AgentSet iteration order.
// The constants below were captured from the seed implementations (before
// src/lattice/ existed) with exactly these parameters and seeds; any
// change in sampling order, count maintenance, or set mutation order
// shows up here as a hash mismatch.
//
// Also pins the comfort-band equivalence: with tau_hi = 1 (k_hi = N) the
// ComfortModel is the paper's model, flip for flip.
#include <gtest/gtest.h>

#include "core/comfort.h"
#include "core/dynamics.h"
#include "core/kawasaki.h"
#include "core/model.h"
#include "core/vacancy.h"
#include "golden_fixtures.h"
#include "multitype/multi_model.h"

namespace seg {
namespace {

// Helpers and frozen hash constants live in tests/golden_fixtures.h (one
// source of truth, shared with the streaming differential suite).
using golden::hash_bytes;
using golden::mix;
using golden::mix_double;

constexpr std::uint64_t kGoldenGlauber = golden::kGlauber;
constexpr std::uint64_t kGoldenDiscrete = golden::kDiscrete;
constexpr std::uint64_t kGoldenAsymVonNeumann = golden::kAsymVonNeumann;
constexpr std::uint64_t kGoldenSynchronous = golden::kSynchronous;
constexpr std::uint64_t kGoldenComfort = golden::kComfort;
constexpr std::uint64_t kGoldenVacancy = golden::kVacancy;
constexpr std::uint64_t kGoldenKawasaki = golden::kKawasaki;
constexpr std::uint64_t kGoldenMulti = golden::kMulti;

TEST(GoldenTrajectory, SchellingGlauber) {
  ModelParams p{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(1001, 0);
  SchellingModel m(p, init);
  Rng dyn = Rng::stream(1001, 1);
  const RunResult r = run_glauber(m, dyn);
  EXPECT_TRUE(r.terminated);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, kGoldenGlauber);
}

TEST(GoldenTrajectory, SchellingDiscreteSuperUnhappy) {
  ModelParams p{.n = 40, .w = 2, .tau = 0.55, .p = 0.5};
  Rng init = Rng::stream(1002, 0);
  SchellingModel m(p, init);
  Rng dyn = Rng::stream(1002, 1);
  RunOptions opt;
  opt.max_flips = 3000;
  const RunResult r = run_discrete(m, dyn, opt);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, kGoldenDiscrete);
}

TEST(GoldenTrajectory, AsymmetricVonNeumann) {
  ModelParams p{.n = 40, .w = 3, .tau = 0.4, .p = 0.5, .tau_minus = 0.55,
                .shape = NeighborhoodShape::kVonNeumann};
  Rng init = Rng::stream(1003, 0);
  SchellingModel m(p, init);
  Rng dyn = Rng::stream(1003, 1);
  RunOptions opt;
  opt.max_flips = 4000;
  const RunResult r = run_glauber(m, dyn, opt);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, kGoldenAsymVonNeumann);
}

TEST(GoldenTrajectory, Synchronous) {
  ModelParams p{.n = 32, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(1004, 0);
  SchellingModel m(p, init);
  const RunResult r = run_synchronous(m, 64);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix(h, r.rounds);
  h = mix(h, r.cycle_detected ? 1 : 0);
  EXPECT_EQ(h, kGoldenSynchronous);
}

TEST(GoldenTrajectory, ComfortBand) {
  ComfortParams p{.n = 40, .w = 2, .tau_lo = 0.4, .tau_hi = 0.8, .p = 0.5};
  Rng init = Rng::stream(1005, 0);
  ComfortModel m(p, init);
  Rng dyn = Rng::stream(1005, 1);
  const ComfortRunResult r = run_comfort(m, dyn, 5000);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, kGoldenComfort);
}

TEST(GoldenTrajectory, VacancyRelocation) {
  VacancyParams p{.n = 40, .w = 2, .tau = 0.5, .vacancy = 0.12, .p = 0.5,
                  .relocation_attempts = 16};
  Rng init = Rng::stream(1006, 0);
  VacancyModel m(p, init);
  Rng dyn = Rng::stream(1006, 1);
  VacancyRunOptions opt;
  opt.max_moves = 4000;
  const VacancyRunResult r = run_vacancy(m, dyn, opt);
  std::uint64_t h = hash_bytes(m.sites().data(), m.sites().size());
  h = mix(h, r.moves);
  h = mix(h, r.proposals);
  EXPECT_EQ(h, kGoldenVacancy);
}

TEST(GoldenTrajectory, KawasakiSwaps) {
  ModelParams p{.n = 32, .w = 2, .tau = 0.4, .p = 0.5};
  Rng init = Rng::stream(1007, 0);
  SchellingModel m(p, init);
  Rng dyn = Rng::stream(1007, 1);
  KawasakiOptions opt;
  opt.max_swaps = 1500;
  const KawasakiResult r = run_kawasaki(m, dyn, opt);
  std::uint64_t h = hash_bytes(m.spins().data(), m.spins().size());
  h = mix(h, r.swaps);
  h = mix(h, r.proposals);
  EXPECT_EQ(h, kGoldenKawasaki);
}

TEST(GoldenTrajectory, MultiTypeQ4) {
  MultiParams p{.n = 40, .w = 2, .q = 4, .tau = 0.35};
  Rng init = Rng::stream(1008, 0);
  MultiTypeModel m(p, init);
  Rng dyn = Rng::stream(1008, 1);
  const MultiRunResult r = run_multi(m, dyn, 6000);
  std::uint64_t h = hash_bytes(m.types().data(), m.types().size());
  h = mix(h, r.flips);
  h = mix_double(h, r.final_time);
  EXPECT_EQ(h, kGoldenMulti);
}

// tau_hi = 1 makes the comfort band one-sided: k_hi = N, so the model is
// exactly the paper's. The two engines must then consume identical RNG
// draws and flip identical agents, step for step.
TEST(GoldenTrajectory, ComfortWithFullBandMatchesSchellingFlipForFlip) {
  const int n = 40;
  const double tau = 0.45;
  Rng spin_rng(2024);
  const auto spins = random_spins(n, 0.5, spin_rng);

  ModelParams sp{.n = n, .w = 2, .tau = tau, .p = 0.5};
  SchellingModel schelling(sp, spins);
  ComfortParams cp{.n = n, .w = 2, .tau_lo = tau, .tau_hi = 1.0, .p = 0.5};
  ASSERT_EQ(cp.k_hi(), cp.neighborhood_size());
  ASSERT_EQ(cp.k_lo(), sp.happy_threshold());
  ComfortModel comfort(cp, spins);

  Rng rng_s(555), rng_c(555);
  std::uint64_t steps = 0;
  while (!schelling.terminated()) {
    ASSERT_FALSE(comfort.quiescent());
    ASSERT_EQ(schelling.flippable_set().size(),
              comfort.flippable_set().size());
    const double dt_s = rng_s.exponential(
        static_cast<double>(schelling.flippable_set().size()));
    const double dt_c = rng_c.exponential(
        static_cast<double>(comfort.flippable_set().size()));
    ASSERT_EQ(dt_s, dt_c);
    const std::uint32_t id_s = schelling.flippable_set().sample(rng_s);
    const std::uint32_t id_c = comfort.flippable_set().sample(rng_c);
    ASSERT_EQ(id_s, id_c);
    schelling.flip(id_s);
    comfort.flip(id_c);
    ++steps;
    ASSERT_LT(steps, 1000000u) << "runaway trajectory";
  }
  EXPECT_TRUE(comfort.quiescent());
  EXPECT_EQ(schelling.spins(), comfort.spins());
  EXPECT_GT(steps, 0u);
}

}  // namespace
}  // namespace seg
