#include "campaign/campaign.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include <gtest/gtest.h>

#include "campaign/builtin.h"
#include "campaign/checkpoint.h"
#include "campaign/metrics.h"
#include "campaign/sinks.h"

namespace seg {
namespace {

// Small but non-trivial Schelling campaign: 2x2 grid of (tau, p), a few
// replicas, cheap dynamics.
ScenarioSpec small_spec() {
  ScenarioSpec spec;
  spec.name = "test_small";
  spec.n = {24};
  spec.w = {1};
  spec.tau = {0.40, 0.45};
  spec.p = {0.5, 0.7};
  spec.replicas = 5;
  spec.region_samples = 8;
  spec.metrics = {"flips", "fixation", "majority", "mean_mono_region"};
  return spec;
}

void expect_bitwise_equal(const CampaignResult& a, const CampaignResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  ASSERT_EQ(a.metric_names, b.metric_names);
  EXPECT_EQ(a.replicas_done, b.replicas_done);
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    for (std::size_t m = 0; m < a.metric_names.size(); ++m) {
      const RunningStats& sa = a.points[i].stats[m];
      const RunningStats& sb = b.points[i].stats[m];
      ASSERT_EQ(sa.count(), sb.count()) << "point " << i << " metric " << m;
      // Bitwise: fold order must be identical, not merely close.
      EXPECT_EQ(sa.mean(), sb.mean()) << "point " << i << " metric " << m;
      EXPECT_EQ(sa.variance(), sb.variance())
          << "point " << i << " metric " << m;
      EXPECT_EQ(sa.min(), sb.min());
      EXPECT_EQ(sa.max(), sb.max());
    }
  }
}

TEST(Scenario, GridExpansionOrderAndCount) {
  ScenarioSpec spec = small_spec();
  EXPECT_EQ(spec.grid_size(), 4u);
  EXPECT_EQ(spec.total_replicas(), 20u);
  const auto points = expand_grid(spec);
  ASSERT_EQ(points.size(), 4u);
  // tau is an outer axis relative to p.
  EXPECT_DOUBLE_EQ(points[0].params.tau, 0.40);
  EXPECT_DOUBLE_EQ(points[0].params.p, 0.5);
  EXPECT_DOUBLE_EQ(points[1].params.tau, 0.40);
  EXPECT_DOUBLE_EQ(points[1].params.p, 0.7);
  EXPECT_DOUBLE_EQ(points[2].params.tau, 0.45);
  EXPECT_DOUBLE_EQ(points[3].params.p, 0.7);
  for (std::size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].index, i);
  }
}

TEST(Scenario, TextRoundTrip) {
  ScenarioSpec spec = small_spec();
  spec.dynamics = {DynamicsKind::kGlauber, DynamicsKind::kDiscrete};
  spec.shape = {NeighborhoodShape::kVonNeumann};
  spec.tau_minus = {0.35};
  ScenarioSpec back;
  std::string error;
  ASSERT_TRUE(ScenarioSpec::parse(spec.to_text(), &back, &error)) << error;
  EXPECT_EQ(spec.to_text(), back.to_text());
  EXPECT_EQ(spec.hash(), back.hash());
}

TEST(Scenario, ShardsRoundTripAndDefaultKeepsLegacyHash) {
  // shards = 1 (the default) must stay out of the canonical text so
  // pre-sharding specs — and their checkpoints, keyed by hash() — are
  // unaffected; non-default shard counts are part of the identity.
  ScenarioSpec serial = small_spec();
  EXPECT_EQ(serial.to_text().find("shards"), std::string::npos);
  ScenarioSpec sharded = small_spec();
  sharded.shards = 4;
  EXPECT_NE(sharded.to_text().find("shards = 4"), std::string::npos);
  EXPECT_NE(serial.hash(), sharded.hash());
  ScenarioSpec back;
  std::string error;
  ASSERT_TRUE(ScenarioSpec::parse(sharded.to_text(), &back, &error))
      << error;
  EXPECT_EQ(back.shards, 4u);
  EXPECT_EQ(sharded.to_text(), back.to_text());
  EXPECT_FALSE(ScenarioSpec::parse("shards = 0\n", &back, &error));
}

TEST(Scenario, ParseRejectsUnknownMetricAndKey) {
  ScenarioSpec spec;
  std::string error;
  EXPECT_FALSE(ScenarioSpec::parse("metrics = no_such_metric\n", &spec,
                                   &error));
  EXPECT_NE(error.find("no_such_metric"), std::string::npos);
  EXPECT_FALSE(ScenarioSpec::parse("frobnicate = 3\n", &spec, &error));
}

TEST(Scenario, ParseAcceptsCommentsAndSpecFileShape) {
  const std::string text =
      "# comment\n"
      "name = sweep\n"
      "n = 16, 24\n"
      "tau = 0.4\n"
      "replicas = 2\n"
      "metrics = flips, majority\n";
  ScenarioSpec spec;
  std::string error;
  ASSERT_TRUE(ScenarioSpec::parse(text, &spec, &error)) << error;
  EXPECT_EQ(spec.name, "sweep");
  EXPECT_EQ(spec.n, (std::vector<int>{16, 24}));
  EXPECT_EQ(spec.replicas, 2u);
  EXPECT_EQ(spec.metrics, (std::vector<std::string>{"flips", "majority"}));
}

TEST(Metrics, RegistryLookup) {
  MetricFn fn = nullptr;
  EXPECT_TRUE(lookup_metric("flips", &fn));
  EXPECT_NE(fn, nullptr);
  EXPECT_FALSE(lookup_metric("bogus", nullptr));
  EXPECT_FALSE(known_metrics().empty());
}

TEST(Campaign, ReplicaSeedsAreDistinct) {
  EXPECT_NE(derive_replica_seed(1, 0), derive_replica_seed(1, 1));
  EXPECT_NE(derive_replica_seed(1, 0), derive_replica_seed(2, 0));
}

TEST(Campaign, BitwiseIdenticalAcrossThreadCounts) {
  const ScenarioSpec spec = small_spec();
  CampaignOptions one, four, sixteen;
  one.threads = 1;
  four.threads = 4;
  sixteen.threads = 16;
  const CampaignResult r1 = run_campaign(spec, 99, one);
  const CampaignResult r4 = run_campaign(spec, 99, four);
  const CampaignResult r16 = run_campaign(spec, 99, sixteen);
  ASSERT_TRUE(r1.complete);
  ASSERT_TRUE(r4.complete);
  ASSERT_TRUE(r16.complete);
  expect_bitwise_equal(r1, r4);
  expect_bitwise_equal(r1, r16);
  // And the rendered CSV bytes match too.
  EXPECT_EQ(CsvSink::render(spec, r1), CsvSink::render(spec, r4));
  EXPECT_EQ(CsvSink::render(spec, r1), CsvSink::render(spec, r16));
}

TEST(Campaign, DifferentSeedsDiffer) {
  const ScenarioSpec spec = small_spec();
  const CampaignResult a = run_campaign(spec, 1);
  const CampaignResult b = run_campaign(spec, 2);
  const RunningStats* fa = a.stats_for(0, "flips");
  const RunningStats* fb = b.stats_for(0, "flips");
  ASSERT_NE(fa, nullptr);
  ASSERT_NE(fb, nullptr);
  EXPECT_NE(fa->mean(), fb->mean());
}

TEST(Checkpoint, SaveLoadRoundTripIsBitExact) {
  CheckpointData data;
  data.seed = 1234567890123456789ULL;
  data.spec_hash = 987654321ULL;
  data.metric_count = 3;
  data.done = {1, 0, 1};
  data.values = {{1.0 / 3.0, -0.0, 1e-308}, {}, {3.14159, 2.0, -7.5e300}};
  const std::string path = testing::TempDir() + "/seg_ck_roundtrip.txt";
  ASSERT_TRUE(save_checkpoint(path, data));
  CheckpointData back;
  ASSERT_TRUE(load_checkpoint(path, &back));
  EXPECT_EQ(back.seed, data.seed);
  EXPECT_EQ(back.spec_hash, data.spec_hash);
  EXPECT_EQ(back.metric_count, data.metric_count);
  EXPECT_EQ(back.done, data.done);
  ASSERT_EQ(back.values.size(), data.values.size());
  for (const std::size_t g : {0u, 2u}) {
    ASSERT_EQ(back.values[g].size(), data.values[g].size());
    for (std::size_t m = 0; m < data.values[g].size(); ++m) {
      EXPECT_EQ(back.values[g][m], data.values[g][m]);  // bit-exact
    }
  }
  std::remove(path.c_str());
}

TEST(Checkpoint, LoadRejectsMissingAndTruncated) {
  CheckpointData out;
  EXPECT_FALSE(load_checkpoint(testing::TempDir() + "/absent.ck", &out));
  const std::string path = testing::TempDir() + "/seg_ck_trunc.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fprintf(f, "seg-campaign-checkpoint v1\n"
                  "seed 1 hash 2 replicas 4 metrics 1\n"
                  "r 0 3ff0000000000000\n");  // no trailer
  std::fclose(f);
  EXPECT_FALSE(load_checkpoint(path, &out));
  std::remove(path.c_str());
}

TEST(Campaign, CheckpointResumeMatchesUninterrupted) {
  const ScenarioSpec spec = small_spec();
  const std::uint64_t seed = 7;
  const CampaignResult uninterrupted = run_campaign(spec, seed);
  ASSERT_TRUE(uninterrupted.complete);

  const std::string ck = testing::TempDir() + "/seg_campaign_resume.ck";
  std::remove(ck.c_str());

  // Simulate a kill: stop after roughly half the replicas, checkpointing
  // after every completion, at an "awkward" thread count.
  CampaignOptions partial_options;
  partial_options.threads = 3;
  partial_options.checkpoint_path = ck;
  partial_options.checkpoint_every = 1;
  partial_options.max_new_replicas = spec.total_replicas() / 2;
  const CampaignResult partial = run_campaign(spec, seed, partial_options);
  EXPECT_FALSE(partial.complete);
  EXPECT_GE(partial.replicas_done, spec.total_replicas() / 2);
  EXPECT_LT(partial.replicas_done, spec.total_replicas());

  CampaignOptions resume_options;
  resume_options.threads = 4;
  resume_options.checkpoint_path = ck;
  resume_options.resume = true;
  const CampaignResult resumed = run_campaign(spec, seed, resume_options);
  ASSERT_TRUE(resumed.complete);
  EXPECT_EQ(resumed.replicas_resumed, partial.replicas_done);
  expect_bitwise_equal(uninterrupted, resumed);
  EXPECT_EQ(CsvSink::render(spec, uninterrupted),
            CsvSink::render(spec, resumed));
  std::remove(ck.c_str());
}

TEST(Campaign, BudgetExhaustionUnderStoppingRuleLeavesPointsOpen) {
  // Regression: a run bounded by max_new_replicas used to let unresolved
  // points silently pass for resolved. Under a stopping rule the budget
  // cut must surface as kOpen (resumable) — never as a stop/cap decision
  // the rule did not actually make.
  ScenarioSpec spec = small_spec();
  spec.stop.rule = StopRule::kHoeffding;
  spec.stop.delta = 0.3;  // unreachable at the 5-replica cap: no fires
  spec.stop.metric = "fixation";
  const std::uint64_t seed = 13;

  const CampaignResult uninterrupted = run_campaign(spec, seed);
  ASSERT_TRUE(uninterrupted.complete);
  for (const PointResult& pr : uninterrupted.points) {
    EXPECT_EQ(pr.state, PointState::kCapped);
  }

  const std::string ck = testing::TempDir() + "/seg_campaign_budget.ck";
  std::remove(ck.c_str());
  CampaignOptions partial_options;
  partial_options.threads = 2;
  partial_options.checkpoint_path = ck;
  partial_options.checkpoint_every = 1;
  partial_options.max_new_replicas = 7;  // of the 20 the grid needs
  const CampaignResult partial = run_campaign(spec, seed, partial_options);
  EXPECT_FALSE(partial.complete);
  std::size_t open = 0;
  for (const PointResult& pr : partial.points) {
    EXPECT_NE(pr.state, PointState::kStopped);
    open += pr.state == PointState::kOpen;
  }
  EXPECT_GT(open, 0u);

  CampaignOptions resume_options;
  resume_options.checkpoint_path = ck;
  resume_options.resume = true;
  const CampaignResult resumed = run_campaign(spec, seed, resume_options);
  ASSERT_TRUE(resumed.complete);
  EXPECT_GT(resumed.replicas_resumed, 0u);
  for (const PointResult& pr : resumed.points) {
    EXPECT_EQ(pr.state, PointState::kCapped);
  }
  expect_bitwise_equal(uninterrupted, resumed);
  std::remove(ck.c_str());
}

TEST(Campaign, ResumeRefusesMismatchedSeedOrSpec) {
  const ScenarioSpec spec = small_spec();
  const std::string ck = testing::TempDir() + "/seg_campaign_mismatch.ck";
  std::remove(ck.c_str());
  CampaignOptions save_options;
  save_options.checkpoint_path = ck;
  save_options.max_new_replicas = 3;
  run_campaign(spec, 1, save_options);

  // Different seed: checkpoint must be ignored, everything recomputed.
  CampaignOptions resume_options;
  resume_options.checkpoint_path = ck;
  resume_options.resume = true;
  const CampaignResult other_seed = run_campaign(spec, 2, resume_options);
  EXPECT_EQ(other_seed.replicas_resumed, 0u);
  ASSERT_TRUE(other_seed.complete);

  // Different spec (extra metric) against the SAME checkpoint file: the
  // identity check, not a missing file, must refuse the resume.
  ScenarioSpec wider = spec;
  wider.metrics.push_back("happy_fraction");
  CampaignOptions wider_options;
  wider_options.checkpoint_path = ck;
  wider_options.resume = true;
  wider_options.max_new_replicas = 2;  // keep the recompute cheap
  const CampaignResult other_spec = run_campaign(wider, 1, wider_options);
  EXPECT_EQ(other_spec.replicas_resumed, 0u);
  std::remove(ck.c_str());
}

TEST(Campaign, ResumeRefusesAdjustedPoints) {
  // Same spec text, different actual points (the region_size pattern of
  // mutating expanded points): the identity hash must cover the points.
  const ScenarioSpec spec = small_spec();
  const std::string ck = testing::TempDir() + "/seg_points.ck";
  std::remove(ck.c_str());
  CampaignOptions save_options;
  save_options.checkpoint_path = ck;
  run_campaign(spec, expand_grid(spec), spec.metrics,
               make_schelling_replica(spec), 11, save_options);

  std::vector<ScenarioPoint> adjusted = expand_grid(spec);
  for (ScenarioPoint& pt : adjusted) pt.params.n = 32;
  CampaignOptions resume_options;
  resume_options.checkpoint_path = ck;
  resume_options.resume = true;
  resume_options.max_new_replicas = 1;
  const CampaignResult r =
      run_campaign(spec, adjusted, spec.metrics,
                   make_schelling_replica(spec), 11, resume_options);
  EXPECT_EQ(r.replicas_resumed, 0u);
  std::remove(ck.c_str());
}

TEST(Campaign, StatsForUnknownNamesReturnsNull) {
  const ScenarioSpec spec = small_spec();
  const CampaignResult r = run_campaign(spec, 5);
  EXPECT_NE(r.stats_for(0, "flips"), nullptr);
  EXPECT_EQ(r.stats_for(0, "bogus"), nullptr);
  EXPECT_EQ(r.stats_for(999, "flips"), nullptr);
}

TEST(Campaign, BuiltinCampaignsExpand) {
  for (const std::string& name : builtin_campaign_names()) {
    BuiltinCampaign campaign;
    ASSERT_TRUE(make_builtin_campaign(name, {}, &campaign)) << name;
    EXPECT_FALSE(campaign.points.empty()) << name;
    EXPECT_FALSE(campaign.metric_names.empty()) << name;
    EXPECT_TRUE(static_cast<bool>(campaign.replica)) << name;
  }
  BuiltinCampaign campaign;
  EXPECT_FALSE(make_builtin_campaign("nope", {}, &campaign));
  // region_size ties the torus side to the horizon.
  ASSERT_TRUE(make_builtin_campaign("region_size", {}, &campaign));
  for (const ScenarioPoint& pt : campaign.points) {
    EXPECT_EQ(pt.params.n, std::max(64, 24 * pt.params.w));
  }
}

TEST(Sinks, CsvAndManifestWrite) {
  ScenarioSpec spec = small_spec();
  spec.replicas = 2;
  const CampaignResult result = run_campaign(spec, 3);
  const std::string csv_path = testing::TempDir() + "/seg_sink.csv";
  const std::string manifest_path = testing::TempDir() + "/seg_sink.manifest";
  CsvSink csv(csv_path);
  ManifestSink manifest(manifest_path);
  manifest.set_info("threads", "1");
  EXPECT_TRUE(write_all(spec, result, {&csv, &manifest}));

  std::ifstream csv_in(csv_path);
  std::string header;
  ASSERT_TRUE(static_cast<bool>(std::getline(csv_in, header)));
  EXPECT_NE(header.find("flips_mean"), std::string::npos);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(csv_in, line)) ++rows;
  EXPECT_EQ(rows, result.points.size());

  std::ifstream manifest_in(manifest_path);
  std::string manifest_text((std::istreambuf_iterator<char>(manifest_in)),
                            std::istreambuf_iterator<char>());
  EXPECT_NE(manifest_text.find("complete = true"), std::string::npos);
  EXPECT_NE(manifest_text.find("[spec]"), std::string::npos);
  EXPECT_NE(manifest_text.find("threads = 1"), std::string::npos);
  std::remove(csv_path.c_str());
  std::remove(manifest_path.c_str());
}

}  // namespace
}  // namespace seg
