#!/usr/bin/env bash
# Emits BENCH_core.json at the repo root: the core hot-path benchmarks
# (BM_Flip and BM_GlauberRun at w in {2, 4, 10}) in Google Benchmark's
# JSON format, annotated with the seed-implementation baselines so the
# perf trajectory — and the speedup over the pre-lattice-engine code —
# is tracked PR over PR.
set -euo pipefail
cd "$(dirname "$0")/.."
repo=$(pwd)

cmake -B build -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build -j --target perf_core >/dev/null

if [[ ! -x build/perf_core ]]; then
  echo "perf_core was not built (is Google Benchmark installed?)" >&2
  exit 1
fi

tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
(cd "$tmp" && "$repo/build/perf_core" \
    --benchmark_filter='^BM_(Flip|GlauberRun)' \
    --benchmark_format=json >raw.json)

python3 - "$tmp/raw.json" "$repo/BENCH_core.json" <<'EOF'
import json
import sys

raw = json.load(open(sys.argv[1]))
# Pre-lattice-engine (seed) timings for the same workloads, measured at
# the start of the unified-engine PR on the reference container. The
# engine PR's acceptance bar is >= 3x on BM_Flip/10.
seed_ns = {
    "BM_Flip/2": 1020.0,
    "BM_Flip/4": 2643.0,
    "BM_Flip/10": 9309.0,
    "BM_GlauberRun/64/2": 724903.0,
    "BM_GlauberRun/128/2": 2806754.0,
}
for bench in raw.get("benchmarks", []):
    baseline = seed_ns.get(bench.get("name", ""))
    if baseline is not None and bench.get("real_time"):
        bench["seed_baseline_ns"] = baseline
        bench["speedup_vs_seed"] = round(baseline / bench["real_time"], 2)
json.dump(raw, open(sys.argv[2], "w"), indent=1)
print(f"wrote {sys.argv[2]}")
EOF
