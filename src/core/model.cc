#include "core/model.h"

#include <cassert>

#include "grid/torus_grid.h"

namespace seg {

std::vector<Point> neighborhood_offsets(NeighborhoodShape shape, int w) {
  std::vector<Point> offsets;
  for (int dy = -w; dy <= w; ++dy) {
    for (int dx = -w; dx <= w; ++dx) {
      if (shape == NeighborhoodShape::kVonNeumann &&
          std::abs(dx) + std::abs(dy) > w) {
        continue;
      }
      offsets.push_back(Point{dx, dy});
    }
  }
  return offsets;
}

std::vector<std::int8_t> random_spins(int n, double p, Rng& rng) {
  return random_spins_count(static_cast<std::size_t>(n) * n, p, rng);
}

std::vector<std::int8_t> random_spins_count(std::size_t count, double p,
                                            Rng& rng) {
  std::vector<std::int8_t> spins(count);
  for (auto& s : spins) s = rng.bernoulli(p) ? 1 : -1;
  return spins;
}

BinarySpinEngine SchellingModel::make_engine(const ModelParams& params,
                                            std::vector<std::int8_t> spins,
                                            ShardLayout layout) {
  assert(params.valid());
  const int N = params.neighborhood_size();
  const int k_plus = params.happy_threshold_of(+1);
  const int k_minus = params.happy_threshold_of(-1);
  // Membership code from (spin, +1-count): bit kUnhappySet if the agent is
  // unhappy, bit kFlippableSet if additionally the flip would make it
  // happy under its *new* type's threshold.
  MembershipTable table(N, [&](bool plus, int count) -> std::uint8_t {
    const int same = plus ? count : N - count;
    const int threshold = plus ? k_plus : k_minus;
    if (same >= threshold) return 0;
    const int after = N - same + 1;
    const int other_threshold = plus ? k_minus : k_plus;
    std::uint8_t code = 1u << kUnhappySet;
    if (after >= other_threshold) code |= 1u << kFlippableSet;
    return code;
  });
  return BinarySpinEngine(params.n, params.w,
                          params.shape == NeighborhoodShape::kMoore,
                          neighborhood_offsets(params.shape, params.w),
                          std::move(spins), std::move(table),
                          /*set_count=*/2, std::move(layout),
                          params.storage);
}

BinarySpinEngine SchellingModel::make_graph_engine(
    const ModelParams& params, std::shared_ptr<const GraphTopology> graph,
    std::vector<std::int8_t> spins, GraphPartition partition) {
  // Same membership rule as make_engine, but the thresholds are derived
  // per neighborhood-size class: K = ceil(tau * N_v) for the node's own
  // N_v. On a uniform-degree graph (torus-as-graph in particular) this
  // collapses to exactly the torus table.
  const double tau_plus = params.tau_of(+1);
  const double tau_minus = params.tau_of(-1);
  const GraphCodeFn code_of = [tau_plus, tau_minus](int N, bool plus,
                                                    int count) -> std::uint8_t {
    const int k_plus = happiness_threshold(tau_plus, N);
    const int k_minus = happiness_threshold(tau_minus, N);
    const int same = plus ? count : N - count;
    const int threshold = plus ? k_plus : k_minus;
    if (same >= threshold) return 0;
    const int after = N - same + 1;
    const int other_threshold = plus ? k_minus : k_plus;
    std::uint8_t code = 1u << kUnhappySet;
    if (after >= other_threshold) code |= 1u << kFlippableSet;
    return code;
  };
  return BinarySpinEngine(std::move(graph), std::move(spins), code_of,
                          /*set_count=*/2, std::move(partition));
}

SchellingModel::SchellingModel(const ModelParams& params, Rng& rng)
    : SchellingModel(params, random_spins(params.n, params.p, rng)) {}

SchellingModel::SchellingModel(const ModelParams& params,
                               std::vector<std::int8_t> spins)
    : SchellingModel(params, std::move(spins), ShardLayout()) {}

SchellingModel::SchellingModel(const ModelParams& params, Rng& rng,
                               ShardLayout layout)
    : SchellingModel(params, random_spins(params.n, params.p, rng),
                     std::move(layout)) {}

SchellingModel::SchellingModel(const ModelParams& params,
                               std::vector<std::int8_t> spins,
                               ShardLayout layout)
    : params_(params),
      N_(params.neighborhood_size()),
      k_plus_(params.happy_threshold_of(+1)),
      k_minus_(params.happy_threshold_of(-1)),
      engine_(make_engine(params, std::move(spins), std::move(layout))) {}

SchellingModel::SchellingModel(const ModelParams& params,
                               std::shared_ptr<const GraphTopology> graph,
                               Rng& rng, GraphPartition partition)
    : SchellingModel(params, graph,
                     random_spins_count(graph->node_count(), params.p, rng),
                     std::move(partition)) {}

SchellingModel::SchellingModel(const ModelParams& params,
                               std::shared_ptr<const GraphTopology> graph,
                               std::vector<std::int8_t> spins,
                               GraphPartition partition)
    : params_(params),
      N_(params.neighborhood_size()),
      k_plus_(params.happy_threshold_of(+1)),
      k_minus_(params.happy_threshold_of(-1)),
      engine_(make_graph_engine(params, std::move(graph), std::move(spins),
                                std::move(partition))) {}

std::int8_t SchellingModel::spin_at(int x, int y) const {
  return engine_.spin(engine_.geometry().id_of(x, y));
}

std::uint32_t SchellingModel::id_of(int x, int y) const {
  return engine_.geometry().id_of(x, y);
}

Point SchellingModel::point_of(std::uint32_t id) const {
  return engine_.geometry().point_of(id);
}

std::int32_t SchellingModel::same_count(std::uint32_t id) const {
  return spin(id) > 0 ? plus_count(id)
                      : neighborhood_size_of(id) - plus_count(id);
}

bool SchellingModel::flip_makes_happy(std::uint32_t id) const {
  // After the flip the agent's same-type count becomes
  // (opposite-type count before) + 1 = N - same_count + 1, and the
  // relevant threshold is the one of its *new* type — both over the
  // agent's own neighborhood size (per node in graph mode).
  return neighborhood_size_of(id) - same_count(id) + 1 >=
         happy_threshold_at(id, static_cast<std::int8_t>(-spin(id)));
}

std::int64_t SchellingModel::lyapunov() const {
  std::int64_t sum = 0;
  for (std::uint32_t id = 0; id < agent_count(); ++id) {
    sum += same_count(id);
  }
  return sum;
}

double SchellingModel::happy_fraction() const {
  return 1.0 - static_cast<double>(count_unhappy()) /
                   static_cast<double>(agent_count());
}

double SchellingModel::plus_fraction() const {
  return static_cast<double>(engine_.plus_total()) /
         static_cast<double>(agent_count());
}

bool SchellingModel::check_invariants() const {
  if (!engine_.check_invariants()) return false;
  for (std::uint32_t id = 0; id < agent_count(); ++id) {
    if (in_unhappy_set(id) != is_unhappy(id)) return false;
    if (in_flippable_set(id) != is_flippable(id)) return false;
  }
  return true;
}

}  // namespace seg
