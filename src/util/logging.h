// Minimal leveled logger. The simulator itself never logs from hot paths;
// this exists for the experiment harnesses and examples.
#pragma once

#include <sstream>
#include <string>

namespace seg {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

// Writes a single formatted line to stderr, thread-safe.
void log_line(LogLevel level, const std::string& message);

namespace internal {

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { log_line(level_, stream_.str()); }
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace seg

#define SEG_LOG_DEBUG ::seg::internal::LogMessage(::seg::LogLevel::kDebug)
#define SEG_LOG_INFO ::seg::internal::LogMessage(::seg::LogLevel::kInfo)
#define SEG_LOG_WARN ::seg::internal::LogMessage(::seg::LogLevel::kWarn)
#define SEG_LOG_ERROR ::seg::internal::LogMessage(::seg::LogLevel::kError)
