#include "theory/entropy.h"

#include <cassert>
#include <cmath>

namespace seg {

double binary_entropy(double x) {
  assert(x >= 0.0 && x <= 1.0);
  if (x <= 0.0 || x >= 1.0) return 0.0;
  return -x * std::log2(x) - (1.0 - x) * std::log2(1.0 - x);
}

double binary_entropy_derivative(double x) {
  assert(x > 0.0 && x < 1.0);
  return std::log2((1.0 - x) / x);
}

}  // namespace seg
