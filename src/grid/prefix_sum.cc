#include "grid/prefix_sum.h"

#include <cassert>

#include "grid/point.h"

namespace seg {

PrefixSum2D::PrefixSum2D(const std::vector<std::int32_t>& values, int n)
    : n_(n), m_(2 * n) {
  assert(n > 0);
  assert(values.size() == static_cast<std::size_t>(n) * n);
  build(values.data());
}

PrefixSum2D::PrefixSum2D(const std::vector<std::int8_t>& values, int n)
    : n_(n), m_(2 * n) {
  assert(n > 0);
  assert(values.size() == static_cast<std::size_t>(n) * n);
  std::vector<std::int32_t> widened(values.begin(), values.end());
  build(widened.data());
}

void PrefixSum2D::build(const std::int32_t* values) {
  const std::size_t stride = static_cast<std::size_t>(m_) + 1;
  table_.assign(stride * (m_ + 1), 0);
  for (int i = 0; i < m_; ++i) {
    const std::int32_t* row =
        values + static_cast<std::size_t>(i % n_) * n_;
    std::int64_t row_acc = 0;
    const std::int64_t* prev = table_.data() + static_cast<std::size_t>(i) * stride;
    std::int64_t* cur = table_.data() + static_cast<std::size_t>(i + 1) * stride;
    for (int j = 0; j < m_; ++j) {
      row_acc += row[j % n_];
      cur[j + 1] = prev[j + 1] + row_acc;
    }
  }
}

std::int64_t PrefixSum2D::rect_sum(int x0, int y0, int x1, int y1) const {
  const int sx = x1 - x0 + 1;
  const int sy = y1 - y0 + 1;
  assert(sx >= 1 && sx <= n_ && sy >= 1 && sy <= n_);
  const int bx = torus_wrap(x0, n_);
  const int by = torus_wrap(y0, n_);
  const int ex = bx + sx;  // exclusive, < 2n
  const int ey = by + sy;
  const std::size_t stride = static_cast<std::size_t>(m_) + 1;
  const auto at = [&](int i, int j) {
    return table_[static_cast<std::size_t>(i) * stride + j];
  };
  return at(ey, ex) - at(by, ex) - at(ey, bx) + at(by, bx);
}

std::int64_t PrefixSum2D::box_sum(int cx, int cy, int r) const {
  assert(r >= 0 && 2 * r + 1 <= n_);
  return rect_sum(cx - r, cy - r, cx + r, cy + r);
}

std::int64_t PrefixSum2D::total() const {
  return rect_sum(0, 0, n_ - 1, n_ - 1);
}

}  // namespace seg
