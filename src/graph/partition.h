// Balanced graph partitions for sharded dynamics on arbitrary topologies.
//
// The stripe/checkerboard ShardLayout cuts only make sense on the torus;
// on a general graph the equivalent object is a balanced vertex partition
// with a boundary classification: a node is INTERIOR to its part iff the
// node and every neighbor live in the same part, so a flip there writes
// counts/codes/sets of its own part only and the phase-A parallel sweep
// stays race-free. Everything else is BOUNDARY and handled by the serial
// phase-B reconciliation, exactly as with stripes.
//
// greedy_bfs grows parts by breadth-first search from the lowest
// unassigned id with per-part size targets — deterministic (no RNG, no
// tie-breaking on addresses), so shard assignment is a pure function of
// (graph, parts) and sharded trajectories stay reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/topology.h"

namespace seg {

class GraphPartition {
 public:
  // Default: the trivial single-part partition of any graph (part_of is
  // identically 0, no boundary). Used by serial graph engines.
  GraphPartition() = default;

  static GraphPartition greedy_bfs(const GraphTopology& graph, int parts);

  int part_count() const { return part_count_; }
  bool trivial() const { return part_count_ == 1; }

  int part_of(std::uint32_t v) const {
    return trivial() ? 0 : part_of_[v];
  }
  bool boundary(std::uint32_t v) const {
    return trivial() ? false : boundary_[v];
  }

  std::size_t boundary_site_count() const;

  // True iff this partition labels every node of `graph`.
  bool compatible(const GraphTopology& graph) const {
    return trivial() || part_of_.size() == graph.node_count();
  }

 private:
  int part_count_ = 1;
  std::vector<std::int32_t> part_of_;
  std::vector<std::uint8_t> boundary_;
};

}  // namespace seg
