// Statistical regression pins for the streaming observables: the
// distribution of the region(cluster)-size histogram and of the final
// interface energy, for Glauber and Kawasaki dynamics at fixed seeds,
// must stay where they were calibrated — a chi-square test on the
// aggregated log2 cluster-size histogram and a two-sample
// Kolmogorov-Smirnov test on the interface-energy sample both fail
// loudly if an engine change drifts the observables' distributions
// (while remaining robust to harmless trajectory reshuffles: the test
// replicas use a disjoint seed block from the calibration replicas).
//
// Reference constants were produced by the binary itself: run with
// SEG_STREAMING_STATS_CALIBRATE=1 to print freshly calibrated arrays
// (256 replicas) plus the statistics a few disjoint seed blocks score
// against them, then paste the arrays below and keep the thresholds a
// comfortable multiple of the observed scores.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "analysis/streaming.h"
#include "core/dynamics.h"
#include "core/kawasaki.h"
#include "core/model.h"
#include "rng/rng.h"

namespace seg {
namespace {

constexpr int kN = 32;
constexpr int kLogBins = 11;  // floor(log2(size)) for sizes 1..1024
constexpr std::size_t kTestReplicas = 64;
constexpr std::size_t kCalibrationReplicas = 256;
constexpr std::uint64_t kCalibrationSeedBase = 5000;
constexpr std::uint64_t kTestSeedBase = 6000;

struct ReplicaObservables {
  double interface = 0.0;
  std::int64_t log_hist[kLogBins] = {};
};

void fill_cluster_histogram(const StreamingObservables& obs,
                            ReplicaObservables* out) {
  const auto sites = static_cast<std::int64_t>(obs.site_count());
  for (std::int64_t size = 1; size <= sites; ++size) {
    const std::int32_t count = obs.clusters_of_size(size);
    if (count == 0) continue;
    const int bin = static_cast<int>(std::floor(std::log2(
        static_cast<double>(size))));
    out->log_hist[std::min(bin, kLogBins - 1)] += count;
  }
}

ReplicaObservables glauber_replica(std::uint64_t seed) {
  ModelParams params{.n = kN, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(seed, 0);
  SchellingModel model(params, init);
  StreamingObservables obs(model.spins(), kN);
  model.set_flip_observer(&obs);
  Rng dyn = Rng::stream(seed, 1);
  run_glauber(model, dyn);
  ReplicaObservables out;
  out.interface = static_cast<double>(obs.interface_length());
  fill_cluster_histogram(obs, &out);
  return out;
}

ReplicaObservables kawasaki_replica(std::uint64_t seed) {
  ModelParams params{.n = kN, .w = 2, .tau = 0.4, .p = 0.5};
  Rng init = Rng::stream(seed, 0);
  SchellingModel model(params, init);
  StreamingObservables obs(model.spins(), kN);
  model.set_flip_observer(&obs);
  Rng dyn = Rng::stream(seed, 1);
  KawasakiOptions options;
  options.max_swaps = 600;
  options.stale_check_after = 2000;
  options.max_consecutive_rejects = 10000;
  run_kawasaki(model, dyn, options);
  ReplicaObservables out;
  out.interface = static_cast<double>(obs.interface_length());
  fill_cluster_histogram(obs, &out);
  return out;
}

struct Sample {
  std::vector<double> interfaces;          // one per replica, sorted
  std::vector<std::int64_t> hist;          // aggregated log2 histogram
};

template <typename ReplicaFn>
Sample collect(ReplicaFn replica, std::uint64_t seed_base,
               std::size_t replicas) {
  Sample sample;
  sample.hist.assign(kLogBins, 0);
  for (std::size_t r = 0; r < replicas; ++r) {
    const ReplicaObservables obs = replica(seed_base + r);
    sample.interfaces.push_back(obs.interface);
    for (int b = 0; b < kLogBins; ++b) sample.hist[b] += obs.log_hist[b];
  }
  std::sort(sample.interfaces.begin(), sample.interfaces.end());
  return sample;
}

// Pearson chi-square of observed counts against expected fractions,
// merging low-expectation bins (< 5 expected) into one pooled bin.
double chi_square(const std::vector<std::int64_t>& observed,
                  const std::vector<double>& expected_fractions) {
  double total = 0.0;
  for (const std::int64_t c : observed) total += static_cast<double>(c);
  double stat = 0.0;
  double pooled_obs = 0.0;
  double pooled_exp = 0.0;
  for (std::size_t b = 0; b < observed.size(); ++b) {
    const double exp = expected_fractions[b] * total;
    const double obs = static_cast<double>(observed[b]);
    if (exp < 5.0) {
      pooled_obs += obs;
      pooled_exp += exp;
      continue;
    }
    stat += (obs - exp) * (obs - exp) / exp;
  }
  if (pooled_exp >= 5.0) {
    stat += (pooled_obs - pooled_exp) * (pooled_obs - pooled_exp) /
            pooled_exp;
  }
  return stat;
}

// Two-sample Kolmogorov-Smirnov statistic (both inputs sorted).
double ks_statistic(const std::vector<double>& a,
                    const std::vector<double>& b) {
  double d = 0.0;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] <= b[j]) {
      ++i;
    } else {
      ++j;
    }
    const double fa = static_cast<double>(i) / a.size();
    const double fb = static_cast<double>(j) / b.size();
    d = std::max(d, std::abs(fa - fb));
  }
  return d;
}

// Downsamples a sorted sample to `count` quantile points.
std::vector<double> quantile_points(const std::vector<double>& sorted,
                                    std::size_t count) {
  std::vector<double> out;
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx =
        i * (sorted.size() - 1) / std::max<std::size_t>(1, count - 1);
    out.push_back(sorted[idx]);
  }
  return out;
}

void print_calibration(const char* name, const Sample& ref) {
  double total = 0.0;
  for (const std::int64_t c : ref.hist) total += c;
  std::printf("// %s expected log2 cluster-size fractions\n", name);
  for (int b = 0; b < kLogBins; ++b) {
    std::printf("    %.10f,%s", static_cast<double>(ref.hist[b]) / total,
                (b % 4 == 3 || b == kLogBins - 1) ? "\n" : "");
  }
  const std::vector<double> pts = quantile_points(ref.interfaces, 33);
  std::printf("// %s interface reference sample (33 quantile points)\n",
              name);
  for (std::size_t i = 0; i < pts.size(); ++i) {
    std::printf("    %.1f,%s", pts[i],
                (i % 6 == 5 || i + 1 == pts.size()) ? "\n" : "");
  }
}

// ---- calibrated references (produced as documented in the header) ----

const std::vector<double> kGlauberExpectedFractions = {
    0.0000000000, 0.0000000000, 0.0000000000, 0.0000000000,
    0.0000000000, 0.0555555556, 0.0501792115, 0.0931899642,
    0.3440860215, 0.4498207885, 0.0071684588,
};
const std::vector<double> kGlauberInterfaceReference = {
    0.0,   56.0,  68.0,  78.0,  84.0,  90.0,
    94.0,  96.0,  98.0,  100.0, 104.0, 106.0,
    108.0, 112.0, 114.0, 114.0, 116.0, 120.0,
    122.0, 124.0, 126.0, 130.0, 132.0, 136.0,
    138.0, 140.0, 142.0, 144.0, 146.0, 150.0,
    154.0, 166.0, 176.0,
};
const std::vector<double> kKawasakiExpectedFractions = {
    0.6799840192, 0.1062724730, 0.0339592489, 0.0311626049,
    0.0199760288, 0.0141829804, 0.0095884938, 0.0033959249,
    0.0721134638, 0.0293647623, 0.0000000000,
};
const std::vector<double> kKawasakiInterfaceReference = {
    150.0, 168.0, 178.0, 186.0, 200.0, 210.0,
    220.0, 226.0, 234.0, 236.0, 242.0, 250.0,
    254.0, 256.0, 260.0, 266.0, 274.0, 278.0,
    288.0, 294.0, 302.0, 304.0, 314.0, 324.0,
    340.0, 346.0, 356.0, 382.0, 404.0, 422.0,
    450.0, 490.0, 740.0,
};

// Thresholds: the chi-square statistic scores ~df (about 10) for
// same-distribution seed blocks and the KS statistic ~0.12 at these
// sample sizes; the bars below sit several times higher, so only a
// genuine distribution shift (not seed noise) trips them.
constexpr double kChiSquareBar = 60.0;
constexpr double kKsBar = 0.35;

bool calibrating() {
  const char* env = std::getenv("SEG_STREAMING_STATS_CALIBRATE");
  return env != nullptr && env[0] == '1';
}

TEST(StreamingStats, GlauberRegionAndInterfaceDistributions) {
  if (calibrating()) {
    const Sample ref =
        collect(glauber_replica, kCalibrationSeedBase,
                kCalibrationReplicas);
    print_calibration("glauber", ref);
    for (const std::uint64_t base : {6000ull, 7000ull, 8000ull}) {
      const Sample probe = collect(glauber_replica, base, kTestReplicas);
      std::printf("// glauber base %llu: chi2 = %.2f, ks = %.4f\n",
                  static_cast<unsigned long long>(base),
                  chi_square(probe.hist, kGlauberExpectedFractions),
                  ks_statistic(probe.interfaces,
                               kGlauberInterfaceReference));
    }
    GTEST_SKIP() << "calibration run";
  }
  const Sample sample =
      collect(glauber_replica, kTestSeedBase, kTestReplicas);
  const double chi2 = chi_square(sample.hist, kGlauberExpectedFractions);
  const double ks =
      ks_statistic(sample.interfaces, kGlauberInterfaceReference);
  EXPECT_LT(chi2, kChiSquareBar)
      << "Glauber region-size histogram drifted from calibration";
  EXPECT_LT(ks, kKsBar)
      << "Glauber interface-energy distribution drifted from calibration";
}

TEST(StreamingStats, KawasakiRegionAndInterfaceDistributions) {
  if (calibrating()) {
    const Sample ref = collect(kawasaki_replica, kCalibrationSeedBase,
                               kCalibrationReplicas);
    print_calibration("kawasaki", ref);
    for (const std::uint64_t base : {6000ull, 7000ull, 8000ull}) {
      const Sample probe =
          collect(kawasaki_replica, base, kTestReplicas);
      std::printf("// kawasaki base %llu: chi2 = %.2f, ks = %.4f\n",
                  static_cast<unsigned long long>(base),
                  chi_square(probe.hist, kKawasakiExpectedFractions),
                  ks_statistic(probe.interfaces,
                               kKawasakiInterfaceReference));
    }
    GTEST_SKIP() << "calibration run";
  }
  const Sample sample =
      collect(kawasaki_replica, kTestSeedBase, kTestReplicas);
  const double chi2 =
      chi_square(sample.hist, kKawasakiExpectedFractions);
  const double ks =
      ks_statistic(sample.interfaces, kKawasakiInterfaceReference);
  EXPECT_LT(chi2, kChiSquareBar)
      << "Kawasaki region-size histogram drifted from calibration";
  EXPECT_LT(ks, kKsBar)
      << "Kawasaki interface-energy distribution drifted from calibration";
}

// The magnetization time-autocorrelation decays: at absorbing-state
// approach the lag-1 autocorrelation of the per-sample magnetization is
// strongly positive (the series is a near-monotone drift), a cheap
// sanity pin on the ring-buffer estimator under real dynamics.
TEST(StreamingStats, AutocorrelationIsPositiveUnderGlauberDrift) {
  ModelParams params{.n = kN, .w = 2, .tau = 0.45, .p = 0.5};
  Rng init = Rng::stream(9000, 0);
  SchellingModel model(params, init);
  StreamingConfig cfg;
  cfg.autocorr_window = 32;
  StreamingObservables obs(model.spins(), kN, cfg);
  model.set_flip_observer(&obs);
  RunOptions options;
  options.snapshot_every = 64;
  options.on_snapshot = [&obs](const SchellingModel&, std::uint64_t,
                               double) { obs.record_sample(); };
  Rng dyn = Rng::stream(9000, 1);
  run_glauber(model, dyn, options);
  ASSERT_GT(obs.samples_recorded(), 8u);
  EXPECT_GT(obs.autocorrelation(1), 0.5);
}

}  // namespace
}  // namespace seg
