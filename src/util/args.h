// A tiny, dependency-free CLI argument parser used by the examples and
// bench harnesses. Accepts `--key=value`, `--key value` and boolean
// `--flag` forms; everything else is collected as a positional argument.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace seg {

class ArgParser {
 public:
  ArgParser(int argc, const char* const* argv);

  bool has(const std::string& key) const;

  // Typed getters with defaults. Malformed numeric values ("10x",
  // overflow) fall back to the default AND record a message in errors();
  // harnesses that care check errors() after reading their flags and
  // refuse to run, instead of silently proceeding with a default the
  // user never asked for.
  std::string get_string(const std::string& key, std::string def = "") const;
  std::int64_t get_int(const std::string& key, std::int64_t def = 0) const;
  double get_double(const std::string& key, double def = 0.0) const;
  bool get_bool(const std::string& key, bool def = false) const;

  // One "--key: <reason>: '<token>'" line per malformed value seen by the
  // typed getters above, in call order.
  const std::vector<std::string>& errors() const { return errors_; }

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program_name() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
  // Getters are const accessors of parse-time state; the error log is
  // bookkeeping they append to lazily.
  mutable std::vector<std::string> errors_;
};

}  // namespace seg
