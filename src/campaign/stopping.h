// Anytime-valid sequential stopping rules for campaign replicas.
//
// A campaign point keeps scheduling replicas until its stopping rule
// certifies — at confidence 1 - alpha simultaneously over every sample
// size — that the watched metric's mean is known to the target
// precision. Two confidence-sequence bounds are provided for metrics
// bounded in a known range, plus a decision rule for binary outcomes:
//
//  * Hoeffding: the half-width depends on n alone (distribution-free),
//    so every point of a campaign stops at the same replica count; it is
//    the conservative reference rule.
//  * Empirical Bernstein (Audibert et al. / Maurer-Pontil): the
//    half-width shrinks with the observed sample variance, so
//    near-deterministic points (deep inside a phase) stop after a
//    handful of replicas while points near the segregation threshold
//    keep sampling — the source of adaptive-campaign replica savings.
//  * Pass rate: for {0,1} outcomes; stops when the Bernoulli confidence
//    sequence certifies the pass probability lies on one side of a
//    decision threshold, or is pinned to half-width <= delta.
//
// Anytime validity comes from a union bound with the spending schedule
// alpha_n = alpha / (n (n+1)), which telescopes to exactly alpha over
// all n: P(exists n >= 1: |mean_n - mu| > h_n) <= alpha for any iid
// stream bounded in the declared range. tests/test_stopping.cc verifies
// this coverage empirically over thousands of simulated streams.
//
// Determinism: a stopper folds replica values in replica order only
// (campaign.cc advances a per-point frontier over the global replica
// indices), so the stop decision is a function of the campaign seed
// alone — never of thread count, scheduling, or completion order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace seg {

enum class StopRule { kNone, kHoeffding, kBernstein, kPassRate };

const char* stop_rule_name(StopRule rule);
bool parse_stop_rule(const std::string& name, StopRule* out);

// Stopping configuration of a campaign (ScenarioSpec::stop). Only read
// when rule != kNone; every field has a spec key of the same name
// (prefixed "stop_" where the bare name would be ambiguous).
struct StopConfig {
  StopRule rule = StopRule::kNone;
  // Target confidence-sequence half-width; the rule fires the first time
  // the bound drops to delta or below.
  double delta = 0.05;
  // Anytime miscoverage budget of the confidence sequence.
  double alpha = 0.05;
  // Replica floor before the rule may fire (spec key "min_replicas").
  std::size_t min_replicas = 2;
  // Replica cap per point (spec key "max_replicas"); 0 = the spec's
  // `replicas` value. Defines the campaign's global index layout, so it
  // is part of the checkpoint identity.
  std::size_t max_replicas = 0;
  // Known range of the watched metric; the bounds are valid only for
  // metrics that actually live inside it.
  double range_lo = 0.0;
  double range_hi = 1.0;
  // Pass-rate decision boundary (spec key "stop_threshold").
  double threshold = 0.5;
  // Watched metric name (spec key "stop_metric"); empty = the campaign's
  // first metric.
  std::string metric;
};

// Per-observation miscoverage budget alpha / (n (n + 1)).
double anytime_alpha(std::size_t n, double alpha);

// Time-uniform Hoeffding half-width for an iid stream bounded in a range
// of width `range`: h_n = range * sqrt(log(2 / alpha_n) / (2 n)).
double hoeffding_half_width(std::size_t n, double alpha, double range);

// Time-uniform empirical-Bernstein half-width: with x = log(3 / alpha_n),
// h_n = sqrt(2 * variance * x / n) + 3 * range * x / n. `variance` is the
// unbiased sample variance of the first n observations.
double empirical_bernstein_half_width(std::size_t n, double variance,
                                      double alpha, double range);

// One stop decision of an adaptive campaign: point `point` stopped after
// folding `replicas` replicas, with the rule's bound at `bound`. The
// ordered-by-point list of decisions is the campaign's decision trace,
// persisted in the checkpoint and hashed into its trailer.
struct StopDecision {
  std::uint32_t point = 0;
  std::uint32_t replicas = 0;
  StopRule rule = StopRule::kNone;
  double bound = 0.0;  // compared bitwise: the fold is deterministic
};

bool operator==(const StopDecision& a, const StopDecision& b);
inline bool operator!=(const StopDecision& a, const StopDecision& b) {
  return !(a == b);
}

// FNV-1a over the decision entries (doubles by bit pattern); recorded in
// the checkpoint so a resumed run can prove it replays the same trace.
std::uint64_t decision_trace_hash(const std::vector<StopDecision>& trace);

// Sequential state of one campaign point: folds watched-metric values in
// replica order (Welford) and decides when to stop. observe() must be
// called with replica 0, 1, 2, ... of the point, in order.
class SequentialStopper {
 public:
  SequentialStopper() = default;
  explicit SequentialStopper(const StopConfig& config);

  // Folds the next replica's watched value. Returns true exactly once:
  // on the observation that fires the rule. Ignored after firing.
  bool observe(double value);

  bool fired() const { return fired_; }
  std::size_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Unbiased sample variance (n-1 denominator); 0 below 2 observations.
  double variance() const;
  // Current confidence-sequence half-width; +infinity before the first
  // observation and for rule kNone.
  double half_width() const;
  // The half-width recorded when the rule fired (+infinity before).
  double bound_at_stop() const { return bound_; }

 private:
  bool rule_fires(double h) const;

  StopConfig config_;
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  bool fired_ = false;
  double bound_ = std::numeric_limits<double>::infinity();  // set on fire
};

}  // namespace seg
