#include "core/kawasaki.h"

#include <gtest/gtest.h>

namespace seg {
namespace {

std::size_t plus_count_total(const SchellingModel& m) {
  std::size_t c = 0;
  for (std::size_t i = 0; i < m.agent_count(); ++i) {
    c += m.spin(static_cast<std::uint32_t>(i)) > 0;
  }
  return c;
}

TEST(SwapImproves, RevertsWhenNotImproving) {
  // All +1 except one -1: swapping can't make the -1 happy anywhere.
  ModelParams p{.n = 10, .w = 1, .tau = 0.6, .p = 0.5};
  std::vector<std::int8_t> spins(100, 1);
  spins[5 * 10 + 5] = -1;
  SchellingModel m(p, spins);
  const auto before = m.spins();
  const bool improved = swap_improves(m, m.id_of(5, 5), m.id_of(0, 0));
  EXPECT_FALSE(improved);
  EXPECT_EQ(m.spins(), before);  // reverted
  EXPECT_TRUE(m.check_invariants());
}

TEST(SwapImproves, AppliesWhenImproving) {
  // Two homogeneous half-planes with two misplaced agents: swapping the
  // strays makes both happy.
  const int n = 12;
  ModelParams p{.n = n, .w = 1, .tau = 0.6, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = (x < n / 2) ? 1 : -1;
    }
  }
  // Strays deep inside each half.
  spins[6 * n + 2] = -1;  // a -1 in the +1 half
  spins[6 * n + 9] = 1;   // a +1 in the -1 half
  SchellingModel m(p, spins);
  const std::uint32_t a = m.id_of(2, 6);
  const std::uint32_t b = m.id_of(9, 6);
  ASSERT_TRUE(m.is_unhappy(a));
  ASSERT_TRUE(m.is_unhappy(b));
  EXPECT_TRUE(swap_improves(m, a, b));
  // Swap left applied.
  EXPECT_EQ(m.spin(a), 1);
  EXPECT_EQ(m.spin(b), -1);
  EXPECT_TRUE(m.is_happy(a));
  EXPECT_TRUE(m.is_happy(b));
}

TEST(Kawasaki, ConservesTypeCounts) {
  ModelParams p{.n = 24, .w = 2, .tau = 0.5, .p = 0.5};
  Rng rng(41);
  SchellingModel m(p, rng);
  const std::size_t plus_before = plus_count_total(m);
  Rng dyn(42);
  KawasakiOptions opt;
  opt.max_swaps = 500;
  run_kawasaki(m, dyn, opt);
  EXPECT_EQ(plus_count_total(m), plus_before);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Kawasaki, TerminatesWhenOneSideHasNoUnhappy) {
  // Uniform grid: nobody is unhappy; terminates immediately.
  ModelParams p{.n = 10, .w = 1, .tau = 0.4, .p = 0.5};
  SchellingModel m(p, std::vector<std::int8_t>(100, 1));
  Rng rng(43);
  const KawasakiResult r = run_kawasaki(m, rng);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.swaps, 0u);
}

TEST(Kawasaki, SwapCapHonored) {
  ModelParams p{.n = 24, .w = 2, .tau = 0.5, .p = 0.5};
  Rng rng(44);
  SchellingModel m(p, rng);
  Rng dyn(45);
  KawasakiOptions opt;
  opt.max_swaps = 3;
  const KawasakiResult r = run_kawasaki(m, dyn, opt);
  EXPECT_LE(r.swaps, 3u);
}

TEST(Kawasaki, MakesProgressOnMixedConfiguration) {
  ModelParams p{.n = 32, .w = 2, .tau = 0.5, .p = 0.5};
  Rng rng(46);
  SchellingModel m(p, rng);
  const std::size_t unhappy_before = m.count_unhappy();
  Rng dyn(47);
  KawasakiOptions opt;
  opt.max_swaps = 2000;
  const KawasakiResult r = run_kawasaki(m, dyn, opt);
  EXPECT_GT(r.swaps, 0u);
  // Kawasaki accepts only swaps that make both agents happy, so the
  // unhappy count cannot go up in aggregate here.
  EXPECT_LE(m.count_unhappy(), unhappy_before);
}

TEST(Kawasaki, ExactAbsorptionCheckStopsStaleRuns) {
  // A configuration with unhappy agents of both types but no improving
  // swap: the stale check must certify termination rather than spin.
  // Construct: checkerboard at tau = 0.9 — everyone unhappy, no swap can
  // reach 90% same-type, so no improving swap exists.
  const int n = 8;
  ModelParams p{.n = n, .w = 1, .tau = 0.9, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = ((x + y) % 2 == 0) ? 1 : -1;
    }
  }
  SchellingModel m(p, spins);
  ASSERT_GT(m.count_unhappy(), 0u);
  Rng rng(48);
  KawasakiOptions opt;
  opt.stale_check_after = 100;
  const KawasakiResult r = run_kawasaki(m, rng, opt);
  EXPECT_TRUE(r.terminated);
  EXPECT_EQ(r.swaps, 0u);
}

}  // namespace
}  // namespace seg
