#include "firewall/annulus.h"
#include "firewall/radical.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/dynamics.h"

namespace seg {
namespace {

TEST(Annulus, SitesLieInTheRightDistanceBand) {
  const int n = 64;
  const Point c{32, 32};
  const double r = 20.0;
  const int w = 3;
  const auto sites = annulus_sites(c, r, w, n);
  ASSERT_FALSE(sites.empty());
  const double inner = r - std::sqrt(2.0) * w;
  for (const auto id : sites) {
    const Point p{static_cast<int>(id % n), static_cast<int>(id / n)};
    const double d = std::sqrt(static_cast<double>(torus_l2_sq(c, p, n)));
    EXPECT_GE(d, inner - 1e-9);
    EXPECT_LE(d, r + 1e-9);
  }
}

TEST(Annulus, InteriorIsStrictlyInside) {
  const int n = 64;
  const Point c{32, 32};
  const double r = 18.0;
  const int w = 3;
  const auto interior = annulus_interior(c, r, w, n);
  const double inner = r - std::sqrt(2.0) * w;
  ASSERT_FALSE(interior.empty());
  for (const auto id : interior) {
    const Point p{static_cast<int>(id % n), static_cast<int>(id / n)};
    const double d = std::sqrt(static_cast<double>(torus_l2_sq(c, p, n)));
    EXPECT_LT(d, inner);
  }
}

TEST(Annulus, DisjointPartitionWithInterior) {
  const int n = 48;
  const Point c{24, 24};
  const auto ring = annulus_sites(c, 15.0, 2, n);
  const auto inside = annulus_interior(c, 15.0, 2, n);
  std::vector<std::uint8_t> seen(static_cast<std::size_t>(n) * n, 0);
  for (const auto id : ring) {
    EXPECT_EQ(seen[id], 0);
    seen[id] = 1;
  }
  for (const auto id : inside) {
    EXPECT_EQ(seen[id], 0);
    seen[id] = 2;
  }
}

TEST(FirewallCert, StableForModerateTauAndLargeRadius) {
  // w = 3, tau = 0.42 (the paper's Fig. 1 intolerance): a radius-24
  // annulus of width ~4.2 on a 64-torus is locally a straight band; every
  // member keeps at least K = 21 protected neighbors (worst case 22).
  const auto cert = firewall_certificate({32, 32}, 24.0, 3, 0.42, 64);
  EXPECT_TRUE(cert.stable);
  EXPECT_GT(cert.annulus_size, 0u);
  EXPECT_GE(cert.min_margin, 0);
}

TEST(FirewallCert, UnstableWhenRadiusTooSmall) {
  // A tiny annulus is strongly curved: corners of the neighborhood stick
  // out into the (worst-case hostile) exterior.
  const auto cert = firewall_certificate({32, 32}, 5.0, 3, 0.49, 64);
  EXPECT_FALSE(cert.stable);
}

TEST(FirewallCert, HigherTauNeedsMoreProtection) {
  const auto lo = firewall_certificate({32, 32}, 24.0, 3, 0.36, 64);
  const auto hi = firewall_certificate({32, 32}, 24.0, 3, 0.49, 64);
  // Same geometry, same same-type counts; margin shrinks as K grows.
  EXPECT_GE(lo.min_margin, hi.min_margin);
}

TEST(FirewallCert, MinStableRadiusMonotoneInW) {
  const int r2 = min_stable_firewall_radius(2, 0.42, 128, 3, 60);
  const int r4 = min_stable_firewall_radius(4, 0.42, 128, 3, 60);
  ASSERT_GT(r2, 0);
  ASSERT_GT(r4, 0);
  EXPECT_LE(r2, r4);  // wider neighborhoods need larger annuli
}

TEST(FirewallCert, Lemma9DynamicCounterpart) {
  // Build the firewall configuration, then run full adversarial dynamics:
  // the annulus and interior must never flip (they are never flippable),
  // regardless of what the exterior does.
  const int n = 64, w = 3;
  const double r = 24.0, tau = 0.42;
  const Point c{32, 32};
  ASSERT_TRUE(firewall_certificate(c, r, w, tau, n).stable);

  auto spins = make_firewall_config(c, r, w, n, +1);
  // Adversarial exterior: random noise outside the firewall.
  Rng noise(1);
  const auto ring = annulus_sites(c, r, w, n);
  const auto inside = annulus_interior(c, r, w, n);
  std::vector<std::uint8_t> protected_site(spins.size(), 0);
  for (const auto id : ring) protected_site[id] = 1;
  for (const auto id : inside) protected_site[id] = 1;
  for (std::size_t i = 0; i < spins.size(); ++i) {
    if (!protected_site[i]) spins[i] = noise.bernoulli(0.5) ? 1 : -1;
  }

  ModelParams params{.n = n, .w = w, .tau = tau, .p = 0.5};
  SchellingModel m(params, spins);
  Rng dyn(2);
  RunOptions opt;
  opt.max_flips = 200000;
  run_glauber(m, dyn, opt);
  for (std::size_t i = 0; i < spins.size(); ++i) {
    if (protected_site[i]) {
      EXPECT_EQ(m.spin(static_cast<std::uint32_t>(i)), 1)
          << "protected site flipped: " << i;
    }
  }
}

TEST(Radical, RadiusFormula) {
  EXPECT_EQ(radical_region_radius(10, 0.3), 13);
  EXPECT_EQ(radical_region_radius(4, 0.25), 5);
}

TEST(Radical, AllPlusNeighborhoodIsRadicalForMinusMinority) {
  ModelParams p{.n = 48, .w = 3, .tau = 0.45, .p = 0.5};
  SchellingModel m(p, std::vector<std::int8_t>(48 * 48, 1));
  const RadicalParams rp{.eps_prime = 0.3, .eps = 0.25};
  EXPECT_TRUE(is_radical_region(m, {24, 24}, rp, -1));
  // And symmetric: it is not radical for +1 minority.
  EXPECT_FALSE(is_radical_region(m, {24, 24}, rp, +1));
}

TEST(Radical, BalancedNeighborhoodIsNotRadical) {
  const int n = 48;
  ModelParams p{.n = n, .w = 3, .tau = 0.45, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = ((x + y) % 2 == 0) ? 1 : -1;
    }
  }
  SchellingModel m(p, spins);
  const RadicalParams rp{.eps_prime = 0.3, .eps = 0.25};
  EXPECT_FALSE(is_radical_region(m, {24, 24}, rp, -1));
  EXPECT_FALSE(is_radical_region(m, {24, 24}, rp, +1));
}

TEST(Radical, ScannerFindsPlantedRegion) {
  const int n = 64;
  ModelParams p{.n = n, .w = 3, .tau = 0.45, .p = 0.5};
  // Balanced noise everywhere except a planted +1 patch.
  Rng rng(3);
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (auto& s : spins) s = rng.bernoulli(0.5) ? 1 : -1;
  for (int y = 20; y < 40; ++y) {
    for (int x = 20; x < 40; ++x) spins[y * n + x] = 1;
  }
  SchellingModel m(p, spins);
  const RadicalParams rp{.eps_prime = 0.3, .eps = 0.25};
  const auto centers = find_radical_regions(m, rp, -1);
  bool found_inside_patch = false;
  for (const Point c : centers) {
    if (c.x >= 25 && c.x < 35 && c.y >= 25 && c.y < 35) {
      found_inside_patch = true;
    }
  }
  EXPECT_TRUE(found_inside_patch);
}

TEST(Radical, NucleusCheckOnPlantedConfiguration) {
  // A radical region whose nucleus holds unhappy minority agents: plant a
  // mostly-+1 region with a few -1 in the middle; those -1 are unhappy.
  const int n = 48;
  ModelParams p{.n = n, .w = 4, .tau = 0.45, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n, 1);
  spins[24 * n + 24] = -1;
  spins[24 * n + 25] = -1;
  spins[25 * n + 24] = -1;
  SchellingModel m(p, spins);
  const RadicalParams rp{.eps_prime = 0.5, .eps = 0.25};
  const auto check = check_unhappy_nucleus(m, {24, 24}, rp, -1);
  EXPECT_EQ(check.minority_in_nucleus, 3);
  EXPECT_EQ(check.unhappy_minority_in_nucleus, 3);  // all isolated -> unhappy
  EXPECT_TRUE(check.holds);  // required count is 0 at this small N
}

TEST(Radical, ExpansionSucceedsOnNearMonochromaticRegion) {
  // A region with a thin sprinkle of -1: every -1 is unhappy and flips;
  // the core becomes monochromatic within the budget.
  const int n = 48;
  ModelParams p{.n = n, .w = 4, .tau = 0.45, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n, 1);
  spins[24 * n + 24] = -1;
  spins[23 * n + 26] = -1;
  SchellingModel m(p, spins);
  const RadicalParams rp{.eps_prime = 0.4, .eps = 0.25};
  const auto result = try_expand_radical_region(m, {24, 24}, rp, -1);
  EXPECT_TRUE(result.expanded);
  EXPECT_LE(result.flips_used, 25u);  // (w+1)^2 budget
  // The caller's model is untouched.
  EXPECT_EQ(m.spin(m.id_of(24, 24)), -1);
}

TEST(Radical, ExpansionFailsOnBalancedRegion) {
  const int n = 48;
  ModelParams p{.n = n, .w = 3, .tau = 0.45, .p = 0.5};
  std::vector<std::int8_t> spins(static_cast<std::size_t>(n) * n);
  for (int y = 0; y < n; ++y) {
    for (int x = 0; x < n; ++x) {
      spins[y * n + x] = ((x / 2 + y / 2) % 2 == 0) ? 1 : -1;  // 2x2 blocks
    }
  }
  SchellingModel m(p, spins);
  const RadicalParams rp{.eps_prime = 0.3, .eps = 0.25};
  const auto result = try_expand_radical_region(m, {24, 24}, rp, -1);
  EXPECT_FALSE(result.expanded);
}

TEST(SuperRadical, TauBarFormula) {
  EXPECT_NEAR(tau_bar(0.6, 100), 0.42, 1e-12);
  EXPECT_NEAR(tau_bar(0.55, 25), 0.53, 1e-12);
}

TEST(SuperRadical, UniformRegionIsSuperRadical) {
  ModelParams p{.n = 48, .w = 3, .tau = 0.6, .p = 0.5};
  SchellingModel m(p, std::vector<std::int8_t>(48 * 48, 1));
  const RadicalParams rp{.eps_prime = 0.3, .eps = 0.25};
  EXPECT_TRUE(is_super_radical_region(m, {24, 24}, rp, -1));
}

}  // namespace
}  // namespace seg
