#include "grid/prefix_sum.h"

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "grid/point.h"
#include "rng/rng.h"

namespace seg {
namespace {

std::int64_t naive_rect_sum(const std::vector<std::int32_t>& v, int n, int x0,
                            int y0, int x1, int y1) {
  std::int64_t acc = 0;
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      acc += v[static_cast<std::size_t>(torus_wrap(y, n)) * n +
               torus_wrap(x, n)];
    }
  }
  return acc;
}

TEST(PrefixSum, TotalMatchesDirectSum) {
  const int n = 6;
  std::vector<std::int32_t> v(n * n);
  std::int64_t expected = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    v[i] = static_cast<std::int32_t>(i % 5);
    expected += v[i];
  }
  const PrefixSum2D p(v, n);
  EXPECT_EQ(p.total(), expected);
}

TEST(PrefixSum, SingleCellRect) {
  const int n = 5;
  std::vector<std::int32_t> v(n * n, 0);
  v[2 * n + 3] = 42;
  const PrefixSum2D p(v, n);
  EXPECT_EQ(p.rect_sum(3, 2, 3, 2), 42);
  EXPECT_EQ(p.rect_sum(0, 0, 0, 0), 0);
}

TEST(PrefixSum, WrappingRect) {
  const int n = 4;
  std::vector<std::int32_t> v(n * n, 1);
  const PrefixSum2D p(v, n);
  // A 3x3 rect crossing both seams still sums 9 cells.
  EXPECT_EQ(p.rect_sum(3, 3, 5, 5), 9);
  EXPECT_EQ(p.rect_sum(-1, -1, 1, 1), 9);
}

TEST(PrefixSum, BoxSumEqualsRectSum) {
  const int n = 9;
  Rng rng(3);
  std::vector<std::int32_t> v(n * n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_below(10));
  const PrefixSum2D p(v, n);
  for (int cy = 0; cy < n; ++cy) {
    for (int cx = 0; cx < n; ++cx) {
      EXPECT_EQ(p.box_sum(cx, cy, 2),
                p.rect_sum(cx - 2, cy - 2, cx + 2, cy + 2));
    }
  }
}

TEST(PrefixSum, Int8OverloadMatches) {
  const int n = 6;
  Rng rng(4);
  std::vector<std::int8_t> v8(n * n);
  std::vector<std::int32_t> v32(n * n);
  for (std::size_t i = 0; i < v8.size(); ++i) {
    v8[i] = rng.bernoulli(0.5) ? 1 : -1;
    v32[i] = v8[i];
  }
  const PrefixSum2D a(v8, n);
  const PrefixSum2D b(v32, n);
  EXPECT_EQ(a.total(), b.total());
  EXPECT_EQ(a.rect_sum(4, 4, 8, 7), b.rect_sum(4, 4, 8, 7));
}

TEST(PrefixSum, FullSpanRectEqualsTotal) {
  const int n = 7;
  Rng rng(6);
  std::vector<std::int32_t> v(n * n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_below(3));
  const PrefixSum2D p(v, n);
  EXPECT_EQ(p.rect_sum(2, 5, 2 + n - 1, 5 + n - 1), p.total());
}

class PrefixSumParam : public ::testing::TestWithParam<int> {};

TEST_P(PrefixSumParam, RandomRectsMatchNaive) {
  const int n = GetParam();
  Rng rng(42 + n);
  std::vector<std::int32_t> v(static_cast<std::size_t>(n) * n);
  for (auto& x : v) x = static_cast<std::int32_t>(rng.uniform_int(-3, 9));
  const PrefixSum2D p(v, n);
  for (int trial = 0; trial < 50; ++trial) {
    const int x0 = static_cast<int>(rng.uniform_int(-n, n));
    const int y0 = static_cast<int>(rng.uniform_int(-n, n));
    const int sx = static_cast<int>(rng.uniform_int(1, n));
    const int sy = static_cast<int>(rng.uniform_int(1, n));
    const int x1 = x0 + sx - 1;
    const int y1 = y0 + sy - 1;
    EXPECT_EQ(p.rect_sum(x0, y0, x1, y1), naive_rect_sum(v, n, x0, y0, x1, y1))
        << "rect (" << x0 << "," << y0 << ")..(" << x1 << "," << y1 << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, PrefixSumParam,
                         ::testing::Values(2, 3, 5, 8, 13, 21));

}  // namespace
}  // namespace seg
