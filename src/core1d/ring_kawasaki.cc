#include "core1d/ring_kawasaki.h"

#include <cassert>
#include <vector>

namespace seg {

bool ring_swap_improves(RingModel& model, int i, int j) {
  assert(model.spin(i) != model.spin(j));
  model.flip(i);
  model.flip(j);
  const bool both_happy = model.is_happy(i) && model.is_happy(j);
  if (!both_happy) {
    model.flip(j);
    model.flip(i);
  }
  return both_happy;
}

namespace {

std::vector<int> unhappy_sites(const RingModel& model) {
  std::vector<int> sites;
  for (int i = 0; i < model.size(); ++i) {
    if (!model.is_happy(i)) sites.push_back(i);
  }
  return sites;
}

bool improving_swap_exists(RingModel& model) {
  std::vector<int> plus, minus;
  for (const int i : unhappy_sites(model)) {
    (model.spin(i) > 0 ? plus : minus).push_back(i);
  }
  for (const int a : plus) {
    for (const int b : minus) {
      if (ring_swap_improves(model, a, b)) {
        model.flip(b);
        model.flip(a);
        return true;
      }
    }
  }
  return false;
}

}  // namespace

RingKawasakiResult run_ring_kawasaki(RingModel& model, Rng& rng,
                                     const RingKawasakiOptions& options) {
  RingKawasakiResult result;
  std::uint64_t consecutive_rejects = 0;
  // Unhappy sites are recollected after each accepted swap only.
  std::vector<int> unhappy = unhappy_sites(model);
  for (;;) {
    if (result.swaps >= options.max_swaps) break;
    std::size_t plus_unhappy = 0;
    for (const int i : unhappy) plus_unhappy += model.spin(i) > 0;
    if (plus_unhappy == 0 || plus_unhappy == unhappy.size()) {
      result.terminated = true;
      break;
    }
    bool accepted = false;
    while (!accepted) {
      const int a = unhappy[rng.uniform_below(unhappy.size())];
      const int b = unhappy[rng.uniform_below(unhappy.size())];
      ++result.proposals;
      if (model.spin(a) == model.spin(b)) continue;
      if (ring_swap_improves(model, a, b)) {
        ++result.swaps;
        consecutive_rejects = 0;
        unhappy = unhappy_sites(model);
        accepted = true;
        break;
      }
      ++consecutive_rejects;
      if (consecutive_rejects >= options.stale_check_after &&
          consecutive_rejects % options.stale_check_after == 0) {
        if (!improving_swap_exists(model)) {
          result.terminated = true;
          return result;
        }
      }
      if (options.max_consecutive_rejects > 0 &&
          consecutive_rejects >= options.max_consecutive_rejects) {
        result.gave_up = true;
        return result;
      }
    }
  }
  return result;
}

}  // namespace seg
