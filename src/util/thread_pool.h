// Small fixed-size thread pool used to parallelize independent Monte-Carlo
// trials. Each trial derives its own RNG stream from the experiment seed,
// so results are identical regardless of the number of workers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace seg {

class ThreadPool {
 public:
  // threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Tasks must not throw.
  void submit(std::function<void()> task);

  // Blocks until every submitted task has finished.
  void wait_idle();

  std::size_t thread_count() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_cv_;
  std::condition_variable idle_cv_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

// Runs fn(i) for i in [0, count) across the pool's workers and waits for
// completion. fn must be safe to call concurrently for distinct i.
void parallel_for(ThreadPool& pool, std::size_t count,
                  const std::function<void(std::size_t)>& fn);

}  // namespace seg
