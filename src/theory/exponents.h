// Exponent multipliers a(tau) and b(tau) of Theorems 1 and 2 (Fig. 3), and
// the finite-N corrections used throughout the proofs:
//
//   tau'   = (tau N - 2)/(N - 1)               (Lemma 19)
//   tau^   = tau [1 - 1/(tau N^{1/2 - eps})]   (radical region definition)
//   a(tau) = [1 - (2e' + e'^2)] [1 - H(tau')]  (eqs. 12, 21)
//   b(tau) = (3/2)(1 + e')^2 [1 - H(tau')]     (Thm. 1 upper bound)
//
// with e' > f(tau). The asymptotic (N -> infinity) curves use tau' = tau
// and e' = f(tau) + delta; the paper plots the delta -> 0 envelope.
#pragma once

namespace seg {

// Finite-N corrected intolerance tau' (approaches tau as N grows).
double tau_prime(double tau, int N);

// tau-hat used in the radical-region definition; eps in (0, 1/2).
double tau_hat(double tau, int N, double eps);

// Lower-bound exponent with an explicit epsilon'.
double a_exponent(double tau, double eps_prime);

// Upper-bound exponent with an explicit epsilon'.
double b_exponent(double tau, double eps_prime);

// Envelope curves as plotted in Fig. 3: epsilon' = f(tau) (its infimum).
// Defined for tau in (tau_2, 1/2) u (1/2, 1 - tau_2); symmetric about 1/2.
double a_exponent_envelope(double tau);
double b_exponent_envelope(double tau);

}  // namespace seg
