#include "percolation/chemical.h"

#include <cassert>
#include <cmath>

namespace seg {

std::vector<std::int32_t> chemical_distances(const SiteField& field, int sx,
                                             int sy) {
  const int L = field.side();
  std::vector<std::int32_t> dist(static_cast<std::size_t>(L) * L, -1);
  if (!field.open(sx, sy)) return dist;
  std::vector<std::uint32_t> queue;
  queue.push_back(static_cast<std::uint32_t>(field.index(sx, sy)));
  dist[field.index(sx, sy)] = 0;
  static constexpr int kDx[4] = {1, -1, 0, 0};
  static constexpr int kDy[4] = {0, 0, 1, -1};
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const std::uint32_t cur = queue[head];
    const int cx = static_cast<int>(cur % L);
    const int cy = static_cast<int>(cur / L);
    const std::int32_t d = dist[cur];
    for (int k = 0; k < 4; ++k) {
      const int nx = cx + kDx[k];
      const int ny = cy + kDy[k];
      if (!field.open(nx, ny)) continue;
      const std::size_t ni = field.index(nx, ny);
      if (dist[ni] >= 0) continue;
      dist[ni] = d + 1;
      queue.push_back(static_cast<std::uint32_t>(ni));
    }
  }
  return dist;
}

std::int32_t chemical_distance(const SiteField& field, int sx, int sy,
                               int tx, int ty) {
  assert(field.in_bounds(tx, ty));
  const auto dist = chemical_distances(field, sx, sy);
  return dist[field.index(tx, ty)];
}

StretchSample chemical_stretch(const SiteField& field, int sx, int sy,
                               int tx, int ty) {
  StretchSample sample;
  sample.l1 = std::abs(tx - sx) + std::abs(ty - sy);
  sample.distance = chemical_distance(field, sx, sy, tx, ty);
  sample.connected = sample.distance >= 0;
  if (sample.connected && sample.l1 > 0) {
    sample.stretch =
        static_cast<double>(sample.distance) / static_cast<double>(sample.l1);
  }
  return sample;
}

}  // namespace seg
