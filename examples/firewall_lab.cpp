// Firewall laboratory: scans a random initial configuration for radical
// regions (Lemma 20 in action), verifies the unhappy nucleus (Lemma 4),
// tries the expandability flip sequence (Lemma 5), and prints the annular
// firewall stability certificate (Lemma 9) for the chosen geometry.
//
//   ./firewall_lab --n 96 --w 3 --tau 0.45 --eps_prime 0.3
#include <cstdio>

#include "core/model.h"
#include "firewall/annulus.h"
#include "firewall/radical.h"
#include "theory/bounds.h"
#include "theory/constants.h"
#include "util/args.h"

int main(int argc, char** argv) {
  const seg::ArgParser args(argc, argv);
  seg::ModelParams params;
  params.n = static_cast<int>(args.get_int("n", 96));
  params.w = static_cast<int>(args.get_int("w", 3));
  params.tau = args.get_double("tau", 0.45);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));
  seg::RadicalParams rp;
  rp.eps_prime = args.get_double("eps_prime", 0.5);
  rp.eps = args.get_double("eps", 0.01);

  const double f = seg::f_tau(params.tau);
  std::printf("tau=%.3f: Lemma 5 requires eps' > f(tau) = %.4f "
              "(using eps'=%.3f)\n",
              params.tau, f, rp.eps_prime);

  seg::Rng init = seg::Rng::stream(seed, 0);
  seg::SchellingModel model(params, init);

  const auto centers = seg::find_radical_regions(model, rp, -1);
  const double predicted = seg::radical_region_probability_exact(
      params.tau, params.w, rp.eps_prime, rp.eps);
  std::printf("radical regions for (+1) growth: %zu of %zu centers "
              "(%.2e/center; Lemma 20 binomial prediction %.2e)\n",
              centers.size(), model.agent_count(),
              static_cast<double>(centers.size()) /
                  static_cast<double>(model.agent_count()),
              predicted);

  if (!centers.empty()) {
    const seg::Point c = centers.front();
    std::printf("probing radical region at (%d, %d):\n", c.x, c.y);
    const auto nucleus = seg::check_unhappy_nucleus(model, c, rp, -1);
    std::printf("  nucleus: %lld minority agents, %lld unhappy "
                "(Lemma 4 requires >= %lld): %s\n",
                static_cast<long long>(nucleus.minority_in_nucleus),
                static_cast<long long>(nucleus.unhappy_minority_in_nucleus),
                static_cast<long long>(nucleus.required),
                nucleus.holds ? "holds" : "fails");
    const auto expansion = seg::try_expand_radical_region(model, c, rp, -1);
    std::printf("  expandable (Lemma 5, budget (w+1)^2 = %d flips): %s "
                "(%llu flips used)\n",
                (params.w + 1) * (params.w + 1),
                expansion.expanded ? "yes" : "no",
                static_cast<unsigned long long>(expansion.flips_used));
  }

  // Lemma 9 certificate for an annular firewall around the grid center.
  const double r = args.get_double("r", params.n / 3.0);
  const auto cert = seg::firewall_certificate(
      {params.n / 2, params.n / 2}, r, params.w, params.tau, params.n);
  std::printf("firewall certificate (r=%.1f, width sqrt(2)w=%.2f): %s "
              "(min margin %d over %zu annulus agents)\n",
              r, 1.4142 * params.w, cert.stable ? "STABLE" : "NOT STABLE",
              cert.min_margin, cert.annulus_size);
  const int min_r = seg::min_stable_firewall_radius(
      params.w, params.tau, params.n, 3, params.n / 2 - 1);
  if (min_r > 0) {
    std::printf("smallest stable radius at these parameters: %d\n", min_r);
  } else {
    std::printf("no stable radius fits this torus at these parameters\n");
  }
  return 0;
}
