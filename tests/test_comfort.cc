// Tests for the comfort-band ("uncomfortable majority") variant from the
// paper's concluding remarks.
#include <gtest/gtest.h>

#include "core/comfort.h"

namespace seg {
namespace {

TEST(ComfortParams, BandThresholds) {
  ComfortParams p{.n = 16, .w = 2, .tau_lo = 0.4, .tau_hi = 0.8, .p = 0.5};
  EXPECT_EQ(p.k_lo(), 10);  // ceil(0.4 * 25)
  EXPECT_EQ(p.k_hi(), 20);  // floor(0.8 * 25)
  EXPECT_TRUE(p.valid());
}

TEST(ComfortParams, FullBandRecoversBaseline) {
  ComfortParams p{.n = 16, .w = 2, .tau_lo = 0.45, .tau_hi = 1.0, .p = 0.5};
  EXPECT_EQ(p.k_hi(), 25);
}

TEST(ComfortParams, InvalidWhenBandInverted) {
  ComfortParams p{.n = 16, .w = 2, .tau_lo = 0.8, .tau_hi = 0.4, .p = 0.5};
  EXPECT_FALSE(p.valid());
}

TEST(Comfort, UniformGridIsUncomfortableUnderCappedBand) {
  // All same type: same-count = N > k_hi — everybody is unhappy, and a
  // flip lands at same-count 1 < k_lo, so nobody is flippable: quiescent
  // but unhappy.
  ComfortParams p{.n = 12, .w = 2, .tau_lo = 0.4, .tau_hi = 0.8, .p = 0.5};
  ComfortModel m(p, std::vector<std::int8_t>(144, 1));
  EXPECT_EQ(m.count_unhappy(), 144u);
  EXPECT_TRUE(m.quiescent());
}

TEST(Comfort, BaselineBandMatchesSchellingFlippability) {
  const int n = 24;
  Rng rng(5);
  const auto spins = random_spins(n, 0.5, rng);
  ComfortParams cp{.n = n, .w = 2, .tau_lo = 0.45, .tau_hi = 1.0, .p = 0.5};
  ComfortModel cm(cp, spins);
  ModelParams sp{.n = n, .w = 2, .tau = 0.45, .p = 0.5};
  SchellingModel sm(sp, spins);
  for (std::uint32_t id = 0; id < sm.agent_count(); ++id) {
    EXPECT_EQ(cm.is_happy(id), sm.is_happy(id)) << id;
    EXPECT_EQ(cm.is_flippable(id), sm.is_flippable(id)) << id;
  }
}

TEST(Comfort, FlipMaintainsInvariants) {
  ComfortParams p{.n = 16, .w = 2, .tau_lo = 0.4, .tau_hi = 0.75, .p = 0.5};
  Rng rng(7);
  ComfortModel m(p, rng);
  for (int t = 0; t < 30; ++t) {
    m.flip(static_cast<std::uint32_t>(rng.uniform_below(m.agent_count())));
  }
  EXPECT_TRUE(m.check_invariants());
}

TEST(Comfort, RunStopsAtBudget) {
  ComfortParams p{.n = 32, .w = 2, .tau_lo = 0.4, .tau_hi = 0.7, .p = 0.5};
  Rng init(9);
  ComfortModel m(p, init);
  Rng dyn(10);
  const ComfortRunResult r = run_comfort(m, dyn, 17);
  EXPECT_LE(r.flips, 17u);
  EXPECT_TRUE(m.check_invariants());
}

TEST(Comfort, BaselineBandRunTerminatesAllHappy) {
  ComfortParams p{.n = 24, .w = 2, .tau_lo = 0.45, .tau_hi = 1.0, .p = 0.5};
  Rng init(11);
  ComfortModel m(p, init);
  Rng dyn(12);
  const ComfortRunResult r = run_comfort(m, dyn, 1u << 20);
  EXPECT_TRUE(r.quiescent);
  EXPECT_EQ(m.count_unhappy(), 0u);
}

TEST(Comfort, CappedBandSuppressesGiantClusters) {
  // The headline hypothesis of the paper's concluding remarks: if agents
  // dislike being an overwhelming majority, large monochromatic regions
  // should not form. Compare the largest same-type cluster under
  // tau_hi = 1.0 vs tau_hi = 0.7.
  const int n = 48;
  Rng seed_rng(13);
  const auto spins = random_spins(n, 0.5, seed_rng);

  ComfortParams base{.n = n, .w = 2, .tau_lo = 0.45, .tau_hi = 1.0,
                     .p = 0.5};
  ComfortModel mb(base, spins);
  Rng d1(14);
  run_comfort(mb, d1, 1u << 20);

  ComfortParams capped{.n = n, .w = 2, .tau_lo = 0.45, .tau_hi = 0.7,
                       .p = 0.5};
  ComfortModel mc(capped, spins);
  Rng d2(15);
  run_comfort(mc, d2, 200000);

  // Largest same-type cluster, via a simple flood on the spin fields.
  const auto largest = [&](const std::vector<std::int8_t>& s) {
    std::vector<int> label(s.size(), -1);
    std::int64_t best = 0;
    std::vector<std::size_t> queue;
    for (std::size_t start = 0; start < s.size(); ++start) {
      if (label[start] >= 0) continue;
      queue.clear();
      queue.push_back(start);
      label[start] = 1;
      std::int64_t count = 0;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        const auto cur = queue[head];
        ++count;
        const int x = static_cast<int>(cur % n);
        const int y = static_cast<int>(cur / n);
        const int dx[4] = {1, -1, 0, 0};
        const int dy[4] = {0, 0, 1, -1};
        for (int k = 0; k < 4; ++k) {
          const std::size_t ni =
              static_cast<std::size_t>(torus_wrap(y + dy[k], n)) * n +
              torus_wrap(x + dx[k], n);
          if (label[ni] < 0 && s[ni] == s[cur]) {
            label[ni] = 1;
            queue.push_back(ni);
          }
        }
      }
      best = std::max(best, count);
    }
    return best;
  };
  EXPECT_LT(largest(mc.spins()), largest(mb.spins()));
}

}  // namespace
}  // namespace seg
