#include "lattice/engine.h"

#include <cassert>
#include <unordered_map>

#include "grid/box_sum.h"

#if SEG_ENGINE_AVX512
#include <immintrin.h>
#endif

namespace seg {

#if SEG_ENGINE_AVX512
namespace {
bool cpu_has_avx512bw() {
  static const bool ok = __builtin_cpu_supports("avx512bw");
  return ok;
}
}  // namespace
#endif

BinarySpinEngine::BinarySpinEngine(int n, int w, bool dense_window,
                                   std::vector<Point> offsets,
                                   std::vector<std::int8_t> spins,
                                   MembershipTable table, int set_count,
                                   ShardLayout layout, EngineStorage storage)
    : geometry_(n, w),
      layout_(std::move(layout)),
      shard_count_(layout_.shard_count()),
      dense_window_(dense_window),
      set_count_(set_count),
      offsets_(std::move(offsets)),
      table_(std::move(table)),
      spins_(std::move(spins)),
      plus_count_(spins_.size(), 0),
      status_(spins_.size(), 0) {
  assert(set_count_ >= 1 && set_count_ <= 8);
  assert(spins_.size() == geometry_.site_count());
  assert(!dense_window_ ||
         static_cast<int>(offsets_.size()) == geometry_.window_size());
  assert(layout_.compatible(n, w));
  storage_ = resolve_storage(storage);
  // int16 counts cap the packed window at 32767 sites (w <= 90 on the
  // Moore stencil); larger windows keep the byte backend.
  if (storage_ == EngineStorage::kPacked && window_size() > 32767) {
    storage_ = EngineStorage::kByte;
  }
  sets_.reserve(static_cast<std::size_t>(set_count_) * shard_count_);
  for (int i = 0; i < set_count_ * shard_count_; ++i) {
    // Each shard slice spans only its shard's id window, so sharded set
    // memory stays O(sites) overall (exactly, for stripe layouts).
    const auto [base, extent] = layout_.id_window(i % shard_count_);
    if (extent == 0) {
      sets_.emplace_back(spins_.size());
    } else {
      sets_.emplace_back(extent, base);
    }
  }
  init_counts();
  if (packed()) {
    bits_ = BitField(spins_, n);
    atomic_bits_ = !layout_.trivial() && layout_.splits_aligned_columns(64);
    plus_count16_.assign(plus_count_.begin(), plus_count_.end());
    // The byte-side arrays are dead weight under the packed backend; the
    // bit array plus int16 counts ARE the working set.
    plus_count_.clear();
    plus_count_.shrink_to_fit();
    spins_.clear();
    spins_.shrink_to_fit();
  }
  init_codes();
  init_breaks();
#if SEG_ENGINE_AVX512
  simd_kernel_ =
      packed() && dense_window_ && sparse_crossings_ && cpu_has_avx512bw();
#endif
}

BinarySpinEngine::BinarySpinEngine(std::shared_ptr<const GraphTopology> graph,
                                   std::vector<std::int8_t> spins,
                                   const GraphCodeFn& code_of, int set_count,
                                   GraphPartition partition)
    // geometry_ and table_ are torus-path state; graph mode never consults
    // them, but neither type has a default constructor, so both get inert
    // placeholders (the smallest valid window, an empty table).
    : geometry_(3, 1),
      shard_count_(partition.part_count()),
      dense_window_(false),
      sparse_crossings_(false),
      set_count_(set_count),
      table_(0, [](bool, int) { return std::uint8_t{0}; }),
      spins_(std::move(spins)),
      plus_count_(spins_.size(), 0),
      status_(spins_.size(), 0),
      graph_(std::move(graph)),
      partition_(std::move(partition)) {
  assert(graph_ != nullptr);
  assert(set_count_ >= 1 && set_count_ <= 8);
  assert(spins_.size() == graph_->node_count());
  assert(partition_.compatible(*graph_));
  // Byte backend only: bit-packing and the break fast path are span
  // machinery; a graph flip is a CSR row walk with exact touch updates.
  storage_ = EngineStorage::kByte;
  for (int k = 0; k < kMaxBreaks; ++k) breaks_[k] = -2;
  init_graph(code_of);
}

void BinarySpinEngine::init_graph(const GraphCodeFn& code_of) {
  const std::size_t nodes = graph_->node_count();
  // One membership table per distinct neighborhood size. Uniform-degree
  // graphs get exactly one, so the per-touch cost matches the torus path
  // (one extra index load).
  table_of_.resize(nodes);
  std::unordered_map<int, std::uint16_t> class_of;
  for (std::uint32_t v = 0; v < nodes; ++v) {
    const int nsize = graph_->neighborhood_size(v);
    const auto [it, inserted] = class_of.try_emplace(
        nsize, static_cast<std::uint16_t>(class_tables_.size()));
    if (inserted) {
      class_tables_.emplace_back(nsize, [&](bool plus, int count) {
        return code_of(nsize, plus, count);
      });
    }
    table_of_[v] = it->second;
  }
  // Graph-partition parts are not contiguous id ranges, so every shard
  // slice must span the full id range — set memory is O(nodes * shards),
  // unlike the windowed stripe slices. Fine at realistic shard counts.
  sets_.reserve(static_cast<std::size_t>(set_count_) * shard_count_);
  for (int i = 0; i < set_count_ * shard_count_; ++i) {
    sets_.emplace_back(nodes);
  }
  for (std::uint32_t v = 0; v < nodes; ++v) {
    assert(spins_[v] == 1 || spins_[v] == -1);
    const auto [row, len] = graph_->row(v);
    std::int32_t plus = 0;
    for (int i = 0; i < len; ++i) plus += spins_[row[i]] > 0;
    plus_count_[v] = plus;
  }
  // Ascending id, matching the torus init_codes order, so initial set
  // contents are permutation-identical between the two modes.
  for (std::uint32_t v = 0; v < nodes; ++v) {
    const MembershipTable& table = class_tables_[table_of_[v]];
    const std::uint8_t want = table.code(spins_[v] > 0, plus_count_[v]);
    if (want != 0) {
      apply_code(v, 0, want);
      status_[v] = want;
    }
  }
}

void BinarySpinEngine::init_breaks() {
  // MembershipTable::breaks() enumerates the crossing counts; the flip
  // fast path needs them in registers, padded to a fixed compare width.
  const std::vector<std::int32_t> found = table_.breaks();
  sparse_crossings_ = found.size() <= static_cast<std::size_t>(kMaxBreaks);
  break_count_ =
      sparse_crossings_ ? static_cast<int>(found.size()) : kMaxBreaks;
  // Sentinel no count can reach: counts stay in [0, N] and the flip loop
  // compares against break or break - 1.
  for (int k = 0; k < kMaxBreaks; ++k) {
    breaks_[k] = sparse_crossings_ && k < break_count_ ? found[k] : -2;
  }
}

void BinarySpinEngine::init_counts() {
  std::vector<std::int32_t> plus_indicator(spins_.size());
  for (std::size_t i = 0; i < spins_.size(); ++i) {
    assert(spins_[i] == 1 || spins_[i] == -1);
    plus_indicator[i] = spins_[i] > 0 ? 1 : 0;
  }
  const int n = geometry_.side();
  if (dense_window_) {
    // Separable sliding-window box sum, O(n^2) independent of w.
    plus_count_ = box_sum_torus(plus_indicator, n, geometry_.radius());
    return;
  }
  // Generic stencil: one cache-friendly shifted-add pass per offset,
  // O(n^2 N) at construction only.
  for (const Point o : offsets_) {
    for (int y = 0; y < n; ++y) {
      const std::size_t src_row =
          static_cast<std::size_t>(torus_wrap(y + o.y, n)) * n;
      std::int32_t* dst =
          plus_count_.data() + static_cast<std::size_t>(y) * n;
      for (int x = 0; x < n; ++x) {
        dst[x] += plus_indicator[src_row + torus_wrap(x + o.x, n)];
      }
    }
  }
}

void BinarySpinEngine::init_codes() {
  const std::uint8_t* tbl = table_.data();
  const std::size_t sites = size();
  for (std::uint32_t id = 0; id < sites; ++id) {
    const std::uint8_t want =
        tbl[table_.spin_offset(spin(id)) + plus_count(id)];
    if (want != 0) {
      apply_code(id, 0, want);
      status_[id] = want;
    }
  }
}

template <typename CountT, int NB>
void BinarySpinEngine::flip_dense_sparse(std::uint32_t id,
                                         std::int32_t delta,
                                         CountT* counts) {
  // A code changes when the count crosses a piece boundary: arriving at
  // `break` going up, or at `break - 1` going down. Two passes per row
  // span — a count update and an any-hit OR-reduction, both against
  // register constants only, both auto-vectorizable — and a rescan of
  // the (rare) spans that contain a crossing. The sentinel padding (-2,
  // shifted to -3 going down) can never equal a count in [0, N], so the
  // 4-compare kernel is exact whenever the model has <= 4 boundaries.
  const std::int32_t shift = delta < 0 ? 1 : 0;
  CountT b[NB];
  for (int k = 0; k < NB; ++k) {
    b[k] = static_cast<CountT>(breaks_[k] - shift);
  }
  const CountT d = static_cast<CountT>(delta);
  geometry_.for_each_span(id, [&](std::size_t base, int len) {
    SEG_ASSERT(base + static_cast<std::size_t>(len) <= size(),
               "window span [" << base << ", " << base + len
                               << ") of site " << id
                               << " escapes the lattice");
    CountT* cnt = counts + base;
    // The flipped agent itself changes code by changing sign, not by
    // crossing a count boundary — its span always rescans, and the
    // rescan must hit it at its window position to keep the legacy set
    // mutation order.
    const bool has_center =
        id >= base && id < base + static_cast<std::size_t>(len);
    unsigned any = has_center ? 1 : 0;
    for (int i = 0; i < len; ++i) {
      const CountT c = static_cast<CountT>(cnt[i] + d);
      cnt[i] = c;
      unsigned hit = 0;
      for (int k = 0; k < NB; ++k) {
        hit |= static_cast<unsigned>(c == b[k]);
      }
      any |= hit;
    }
    if (any) {
      for (int i = 0; i < len; ++i) {
        const auto j = static_cast<std::uint32_t>(base + i);
        const CountT c = cnt[i];
        unsigned hit = j == id ? 1u : 0u;
        for (int k = 0; k < NB; ++k) {
          hit |= static_cast<unsigned>(c == b[k]);
        }
        if (hit) touch(j, c);
      }
    }
  });
}

void BinarySpinEngine::flip_impl(std::uint32_t id) {
  SEG_ASSERT(id < size(),
             "flip of out-of-range site " << id << " (lattice has "
                                          << size() << " sites)");
  if (graph_) {
    flip_graph(id);
    return;
  }
  const std::int8_t old_spin = spin(id);
  SEG_ASSERT(old_spin == 1 || old_spin == -1,
             "site " << id << " holds corrupt spin "
                     << static_cast<int>(old_spin));
  if (packed()) {
    // Packed-path flip counter: same slab-write contract as
    // "engine.flips" above; disabled cost is one relaxed load + branch.
    SEG_COUNT("engine.packed_flips", 1);
    if (atomic_bits_) {
      bits_.flip_atomic(id);
    } else {
      bits_.flip(id);
    }
  } else {
    spins_[id] = static_cast<std::int8_t>(-old_spin);
  }
  const std::int32_t delta = old_spin > 0 ? -1 : +1;
#if SEG_ENGINE_AVX512
  if (simd_kernel_) {
    flip_packed_avx512(id, delta);
    return;
  }
#endif
  if (dense_window_ && sparse_crossings_) {
    if (packed()) {
      if (break_count_ <= 4) {
        flip_dense_sparse<std::int16_t, 4>(id, delta, plus_count16_.data());
      } else {
        flip_dense_sparse<std::int16_t, 8>(id, delta, plus_count16_.data());
      }
    } else {
      if (break_count_ <= 4) {
        flip_dense_sparse<std::int32_t, 4>(id, delta, plus_count_.data());
      } else {
        flip_dense_sparse<std::int32_t, 8>(id, delta, plus_count_.data());
      }
    }
    return;
  }
  if (dense_window_) {
    geometry_.for_each_span(id, [&](std::size_t base, int len) {
      for (int i = 0; i < len; ++i) {
        const auto j = static_cast<std::uint32_t>(base + i);
        touch(j, bump_count(j, delta));
      }
    });
    return;
  }
  const int n = geometry_.side();
  const int cx = static_cast<int>(id % n);
  const int cy = static_cast<int>(id / n);
  for (const Point o : offsets_) {
    const std::uint32_t j = static_cast<std::uint32_t>(
        static_cast<std::size_t>(torus_wrap(cy + o.y, n)) * n +
        torus_wrap(cx + o.x, n));
    touch(j, bump_count(j, delta));
  }
}

void BinarySpinEngine::flip_graph(std::uint32_t id) {
  const std::int8_t old_spin = spins_[id];
  SEG_ASSERT(old_spin == 1 || old_spin == -1,
             "node " << id << " holds corrupt spin "
                     << static_cast<int>(old_spin));
  spins_[id] = static_cast<std::int8_t>(-old_spin);
  const std::int32_t delta = old_spin > 0 ? -1 : +1;
  // row(id) includes id itself, so the flipped node's own count and code
  // update in the same pass; on a torus-built graph the row IS the legacy
  // stencil order, so the touch/set-mutation history matches the span
  // path exactly (goldens pin this).
  const auto [row, len] = graph_->row(id);
  for (int i = 0; i < len; ++i) {
    const std::uint32_t j = row[i];
    touch_graph(j, plus_count_[j] += delta);
  }
}

#if SEG_ENGINE_AVX512
__attribute__((target("avx512f,avx512bw"))) void
BinarySpinEngine::flip_packed_avx512(std::uint32_t id, std::int32_t delta) {
  const int n = geometry_.side();
  const int w = geometry_.radius();
  const int side = 2 * w + 1;
  const int cx = static_cast<int>(id % n);
  const int cy = static_cast<int>(id / n);
  const std::int32_t shift = delta < 0 ? 1 : 0;
  const __m512i vd = _mm512_set1_epi16(static_cast<std::int16_t>(delta));
  // Four compares cover every current model; sentinel-padded lanes never
  // match a count in [0, N]. Models with 5..8 boundaries take the second
  // compare block (the branch is perfectly predicted per engine).
  const __m512i vb0 =
      _mm512_set1_epi16(static_cast<std::int16_t>(breaks_[0] - shift));
  const __m512i vb1 =
      _mm512_set1_epi16(static_cast<std::int16_t>(breaks_[1] - shift));
  const __m512i vb2 =
      _mm512_set1_epi16(static_cast<std::int16_t>(breaks_[2] - shift));
  const __m512i vb3 =
      _mm512_set1_epi16(static_cast<std::int16_t>(breaks_[3] - shift));
  const bool wide = break_count_ > 4;
  __m512i vb4, vb5, vb6, vb7;
  if (wide) {
    vb4 = _mm512_set1_epi16(static_cast<std::int16_t>(breaks_[4] - shift));
    vb5 = _mm512_set1_epi16(static_cast<std::int16_t>(breaks_[5] - shift));
    vb6 = _mm512_set1_epi16(static_cast<std::int16_t>(breaks_[6] - shift));
    vb7 = _mm512_set1_epi16(static_cast<std::int16_t>(breaks_[7] - shift));
  }
  std::int16_t* counts = plus_count16_.data();
  // Same decomposition and order as for_each_window_span: rows from
  // cy - w wrapping upward, each row the wrapped-start segment then (if
  // the window crosses the seam) the head segment.
  int x0 = cx - w;
  if (x0 < 0) x0 += n;
  int y = cy - w;
  if (y < 0) y += n;
  const int tail = n - x0;
  const bool split = tail < side;
  const int seg_count = split ? 2 : 1;
  const int seg_sx[2] = {x0, 0};
  const int seg_len[2] = {split ? tail : side, side - tail};
  for (int row = 0; row < side; ++row) {
    std::int16_t* rowp = counts + static_cast<std::size_t>(y) * n;
    for (int s = 0; s < seg_count; ++s) {
      const int sx = seg_sx[s];
      int off = 0;
      int remaining = seg_len[s];
      while (remaining > 0) {
        const int take = remaining < 32 ? remaining : 32;
        std::int16_t* cnt = rowp + sx + off;
        const __mmask32 lanes =
            take >= 32 ? ~static_cast<__mmask32>(0)
                       : ((static_cast<__mmask32>(1) << take) - 1);
        __m512i v = _mm512_maskz_loadu_epi16(lanes, cnt);
        v = _mm512_add_epi16(v, vd);
        // Masked store writes only the active lanes — no out-of-window
        // memory traffic, so the sharded phase-A concurrency contract is
        // the same as the scalar path's.
        _mm512_mask_storeu_epi16(cnt, lanes, v);
        __mmask32 m = _mm512_mask_cmpeq_epi16_mask(lanes, v, vb0);
        m |= _mm512_mask_cmpeq_epi16_mask(lanes, v, vb1);
        m |= _mm512_mask_cmpeq_epi16_mask(lanes, v, vb2);
        m |= _mm512_mask_cmpeq_epi16_mask(lanes, v, vb3);
        if (wide) {
          m |= _mm512_mask_cmpeq_epi16_mask(lanes, v, vb4);
          m |= _mm512_mask_cmpeq_epi16_mask(lanes, v, vb5);
          m |= _mm512_mask_cmpeq_epi16_mask(lanes, v, vb6);
          m |= _mm512_mask_cmpeq_epi16_mask(lanes, v, vb7);
        }
        // The flipped site changes code by changing sign, not by crossing
        // a boundary: force its lane so touch() re-resolves it.
        if (y == cy && cx >= sx + off && cx < sx + off + take) {
          m |= static_cast<__mmask32>(1) << (cx - sx - off);
        }
        std::uint32_t hits = static_cast<std::uint32_t>(m);
        const auto base = static_cast<std::uint32_t>(
            static_cast<std::size_t>(y) * n + sx + off);
        while (hits != 0) {
          const int j = __builtin_ctz(hits);
          hits &= hits - 1;
          touch(base + static_cast<std::uint32_t>(j), cnt[j]);
        }
        off += take;
        remaining -= take;
      }
    }
    if (++y == n) y = 0;
  }
}
#endif  // SEG_ENGINE_AVX512

std::vector<std::int8_t> BinarySpinEngine::spins_snapshot() const {
  return packed() ? bits_.unpack() : spins_;
}

BitField BinarySpinEngine::packed_spins() const {
  return packed() ? bits_ : BitField(spins_, geometry_.side());
}

std::int64_t BinarySpinEngine::plus_total() const {
  if (packed()) return bits_.count_all();
  std::int64_t total = 0;
  for (const std::int8_t s : spins_) total += (s > 0);
  return total;
}

bool BinarySpinEngine::check_invariants() const {
  if (graph_) {
    const std::size_t nodes = size();
    for (std::uint32_t id = 0; id < nodes; ++id) {
      if (spins_[id] != 1 && spins_[id] != -1) return false;
      const auto [row, len] = graph_->row(id);
      std::int32_t plus = 0;
      for (int i = 0; i < len; ++i) plus += spins_[row[i]] > 0;
      if (plus != plus_count_[id]) return false;
      const MembershipTable& table = class_tables_[table_of_[id]];
      if (status_[id] != table.code(spins_[id] > 0, plus)) return false;
      const int owner = partition_.part_of(id);
      for (int s = 0; s < set_count_; ++s) {
        for (int shard = 0; shard < shard_count_; ++shard) {
          const bool want =
              shard == owner && (((status_[id] >> s) & 1) != 0);
          if (sets_[s * shard_count_ + shard].contains(id) != want) {
            return false;
          }
        }
      }
    }
    return true;
  }
  const int n = geometry_.side();
  const std::size_t sites = size();
  for (std::uint32_t id = 0; id < sites; ++id) {
    if (spin(id) != 1 && spin(id) != -1) return false;
    std::int32_t plus = 0;
    const int cx = static_cast<int>(id % n);
    const int cy = static_cast<int>(id / n);
    for (const Point o : offsets_) {
      plus += spin(static_cast<std::uint32_t>(
                 static_cast<std::size_t>(torus_wrap(cy + o.y, n)) * n +
                 torus_wrap(cx + o.x, n))) > 0;
    }
    if (plus != plus_count(id)) return false;
    if (status_[id] != table_.code(spin(id) > 0, plus)) return false;
    const int owner = layout_.shard_of(id);
    for (int s = 0; s < set_count_; ++s) {
      // The membership must live in the owning shard's slice and nowhere
      // else — a flip routed through the wrong shard would double-count.
      for (int shard = 0; shard < shard_count_; ++shard) {
        const bool want =
            shard == owner && (((status_[id] >> s) & 1) != 0);
        if (sets_[s * shard_count_ + shard].contains(id) != want) {
          return false;
        }
      }
    }
  }
  return true;
}

}  // namespace seg
