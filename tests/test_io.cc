#include "io/csv.h"
#include "io/ppm.h"
#include "io/table.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace seg {
namespace {

TEST(Ppm, HeaderAndSize) {
  PpmImage img(3, 2);
  const auto bytes = img.serialize();
  const std::string header(bytes.begin(), bytes.begin() + 11);
  EXPECT_EQ(header, "P6\n3 2\n255\n");
  EXPECT_EQ(bytes.size(), 11u + 3u * 2u * 3u);
}

TEST(Ppm, SetGetRoundTrip) {
  PpmImage img(4, 4);
  img.set(1, 2, Rgb{10, 20, 30});
  EXPECT_EQ(img.get(1, 2), (Rgb{10, 20, 30}));
  EXPECT_EQ(img.get(0, 0), (Rgb{0, 0, 0}));
}

TEST(Ppm, PixelBytesInRowMajorRgbOrder) {
  PpmImage img(2, 1);
  img.set(0, 0, Rgb{1, 2, 3});
  img.set(1, 0, Rgb{4, 5, 6});
  const auto bytes = img.serialize();
  const std::size_t off = bytes.size() - 6;
  EXPECT_EQ(bytes[off + 0], 1);
  EXPECT_EQ(bytes[off + 1], 2);
  EXPECT_EQ(bytes[off + 2], 3);
  EXPECT_EQ(bytes[off + 3], 4);
  EXPECT_EQ(bytes[off + 4], 5);
  EXPECT_EQ(bytes[off + 5], 6);
}

TEST(Ppm, WriteFileProducesBytes) {
  PpmImage img(2, 2, Rgb{9, 9, 9});
  const std::string path = ::testing::TempDir() + "/seg_test.ppm";
  ASSERT_TRUE(img.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(static_cast<std::size_t>(size), img.serialize().size());
}

TEST(Ppm, Fig1PaletteDistinguishesAllFourStates) {
  const Rgb hp = fig1_color(+1, true);
  const Rgb hm = fig1_color(-1, true);
  const Rgb up = fig1_color(+1, false);
  const Rgb um = fig1_color(-1, false);
  EXPECT_NE(hp, hm);
  EXPECT_NE(hp, up);
  EXPECT_NE(hm, um);
  EXPECT_NE(up, um);
  EXPECT_EQ(hp, fig1_palette::kHappyPlus);
  EXPECT_EQ(um, fig1_palette::kUnhappyMinus);
}

TEST(Csv, HeaderOnly) {
  CsvWriter csv({"a", "b"});
  EXPECT_EQ(csv.str(), "a,b\n");
  EXPECT_EQ(csv.column_count(), 2u);
}

TEST(Csv, RowsAndTypes) {
  CsvWriter csv({"name", "x", "k"});
  csv.new_row().add("alpha").add(1.5).add(std::int64_t{7});
  csv.new_row().add("beta").add(2.0).add(std::int64_t{-3});
  EXPECT_EQ(csv.str(), "name,x,k\nalpha,1.5,7\nbeta,2,-3\n");
  EXPECT_EQ(csv.row_count(), 2u);
}

TEST(Csv, EscapesSpecialCharacters) {
  CsvWriter csv({"v"});
  csv.new_row().add("has,comma");
  csv.new_row().add("has\"quote");
  const std::string out = csv.str();
  EXPECT_NE(out.find("\"has,comma\""), std::string::npos);
  EXPECT_NE(out.find("\"has\"\"quote\""), std::string::npos);
}

TEST(Csv, WriteFile) {
  CsvWriter csv({"x"});
  csv.new_row().add(std::int64_t{1});
  const std::string path = ::testing::TempDir() + "/seg_test.csv";
  ASSERT_TRUE(csv.write_file(path));
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  char buf[64] = {};
  const auto read = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(std::string(buf, read), "x\n1\n");
}

TEST(Table, AlignsColumns) {
  TablePrinter t({"tau", "value"});
  t.new_row().add("0.45").add("short");
  t.new_row().add("0.433333").add("x");
  const std::string out = t.str();
  // Header, rule, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
  EXPECT_NE(out.find("tau"), std::string::npos);
  EXPECT_NE(out.find("0.433333"), std::string::npos);
}

TEST(Table, NumericFormatting) {
  TablePrinter t({"v"});
  t.new_row().add(1.23456789, 3);
  EXPECT_NE(t.str().find("1.235"), std::string::npos);
  TablePrinter t2({"k"});
  t2.new_row().add(std::int64_t{42});
  EXPECT_NE(t2.str().find("42"), std::string::npos);
}

TEST(Table, ImplicitFirstRow) {
  TablePrinter t({"a"});
  t.add("x");  // no explicit new_row
  EXPECT_NE(t.str().find('x'), std::string::npos);
}

}  // namespace
}  // namespace seg
