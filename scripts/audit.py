#!/usr/bin/env python3
"""Self-consistency auditor: docs vs recorded benchmarks vs source.

The repo makes quantitative claims in three places — README.md prose,
the annotations scripts/bench.sh bakes into BENCH_core.json, and
constants in the source tree. These drift independently (a re-run of
bench.sh, an edited README, a retuned constant), so CI runs this script
and fails on any contradiction between them.

Checks (see --list):
  * BENCH_core.json parses and contains the core benchmark families.
  * seed_baseline_ns annotations in BENCH_core.json equal the seed_ns
    table in scripts/bench.sh, and each recorded speedup_vs_seed is the
    recomputed baseline / real_time.
  * The sharded-scaling curve covers the shard counts the README
    documents (serial + 1/2/4/8 stripes).
  * The streaming-recording speedup recorded in BENCH_core.json meets
    the ">= 10x" target both it and the README state.
  * The coverage threshold in .github/workflows/ci.yml matches the
    README's stated gate.
  * A single-core benchmark run (context.num_cpus == 1) must carry a
    top-level "caveats" field — wall-clock parallel numbers from such a
    run are framework-overhead measurements, not scaling results.
  * The recorded disabled-telemetry overhead respects the <= 2% budget
    that README.md and src/obs/telemetry.h promise.
  * README.md's /metrics scrape-overhead claim equals the
    context.metrics_endpoint_overhead figure bench.sh recorded, which
    must stay inside its <= 2% budget.
  * README.md's bit-packed storage speedup claims equal the
    packed-vs-prior-byte speedups recorded in BENCH_core.json.
  * README.md's adaptive-campaign replica-savings claim equals the
    context.adaptive_savings figure bench.sh recorded, which must meet
    its own >= 0.30 target.
  * README.md's torus-as-graph overhead factors equal the
    context.graph_overhead ratios bench.sh recorded, which must match
    the raw BM_FlipGraphTorus / BM_Flip rows they were derived from.
  * The histogram bucket count in src/obs/telemetry.h matches the
    README's description.

Usage: scripts/audit.py [--list] [--repo PATH]
Exit status 0 when every claim is consistent, 1 otherwise.
"""

import argparse
import json
import os
import re
import sys


def read_text(repo, rel):
    path = os.path.join(repo, rel)
    with open(path, "r", encoding="utf-8") as f:
        return f.read()


def check_bench_core(repo, bench):
    problems = []
    names = {b.get("name") for b in bench.get("benchmarks", [])}
    # Trailing argument is the storage backend: 0 = byte, 1 = bit-packed.
    # Both backends must be recorded for every flip workload.
    for required in ("BM_Flip/2/0", "BM_Flip/2/1", "BM_Flip/4/0",
                     "BM_Flip/4/1", "BM_Flip/10/0", "BM_Flip/10/1"):
        if required not in names:
            problems.append(f"BENCH_core.json is missing {required}")
    return problems


def seed_table_key(name):
    """Benchmark row name -> seed_ns table key.

    The seed baselines predate the storage-backend split, so the table is
    keyed without the trailing storage argument that BM_Flip and
    BM_GlauberRun rows now carry.
    """
    if name.startswith(("BM_Flip/", "BM_GlauberRun/")):
        return name.rsplit("/", 1)[0]
    return name


def check_seed_baselines(repo, bench):
    """bench.sh's seed_ns table must equal the recorded annotations."""
    problems = []
    script = read_text(repo, "scripts/bench.sh")
    table = {}
    in_table = False
    for line in script.splitlines():
        if re.match(r"\s*seed_ns\s*=\s*{", line):
            in_table = True
            continue
        if in_table:
            if line.strip().startswith("}"):
                break
            m = re.match(r'\s*"([^"]+)":\s*([0-9.]+)', line)
            if m:
                table[m.group(1)] = float(m.group(2))
    if not table:
        return ["could not parse the seed_ns table out of scripts/bench.sh"]
    for b in bench.get("benchmarks", []):
        name = b.get("name")
        recorded = b.get("seed_baseline_ns")
        if recorded is None:
            continue
        expected = table.get(seed_table_key(name))
        if expected is None:
            problems.append(
                f"{name} carries seed_baseline_ns={recorded} but "
                "scripts/bench.sh has no seed_ns entry for it")
        elif abs(recorded - expected) > 1e-9:
            problems.append(
                f"{name}: seed_baseline_ns={recorded} in BENCH_core.json, "
                f"but scripts/bench.sh says {expected}")
        real = b.get("real_time")
        speedup = b.get("speedup_vs_seed")
        if expected and real and speedup is not None:
            recomputed = round(expected / real, 2)
            if abs(recomputed - speedup) > 0.011:
                problems.append(
                    f"{name}: recorded speedup_vs_seed={speedup} but "
                    f"baseline/real_time = {recomputed}")
    return problems


def check_shard_coverage(repo, bench):
    """The scaling curve must cover the shard counts the README names."""
    problems = []
    documented = {0, 1, 2, 4, 8}  # serial + the 1/2/4/8 stripe curve
    seen = {}
    for b in bench.get("benchmarks", []):
        m = re.match(r"BM_GlauberSweep/(\d+)/(\d+)", b.get("name", ""))
        if m:
            seen.setdefault(int(m.group(1)), set()).add(int(m.group(2)))
    if not seen:
        return ["BENCH_core.json has no BM_GlauberSweep rows"]
    for n, shard_set in sorted(seen.items()):
        missing = documented - shard_set
        if missing:
            problems.append(
                f"BM_GlauberSweep at n={n} is missing shard counts "
                f"{sorted(missing)} (README documents serial + 1/2/4/8)")
    return problems


def check_streaming_speedup(repo, bench):
    problems = []
    readme = read_text(repo, "README.md")
    ctx = bench.get("context", {}).get("streaming_observables", {})
    target = ctx.get("target", "")
    m = re.search(r">=\s*(\d+)x", target)
    if not m:
        return ["BENCH_core.json streaming_observables has no '>= Nx' target"]
    floor = float(m.group(1))
    if not re.search(r"≥\s*10x|>=\s*10x", readme):
        problems.append(
            "README.md no longer states the >= 10x streaming recording "
            "target that BENCH_core.json declares")
    for n, speedup in ctx.get("speedup_vs_rescan", {}).items():
        if speedup < floor:
            problems.append(
                f"streaming recording speedup at n={n} is {speedup}x, below "
                f"the declared target {target!r}")
    return problems


def check_coverage_gate(repo, bench):
    problems = []
    ci = read_text(repo, os.path.join(".github", "workflows", "ci.yml"))
    readme = read_text(repo, "README.md")
    m = re.search(r"--fail-under-line\s+(\d+)", ci)
    if not m:
        return ["ci.yml has no --fail-under-line coverage gate"]
    gate = m.group(1)
    if not re.search(rf"below\s+{gate}%", readme):
        problems.append(
            f"ci.yml enforces --fail-under-line {gate} but README.md does "
            f"not describe a {gate}% gate")
    return problems


def check_single_core_caveats(repo, bench):
    if bench.get("context", {}).get("num_cpus") == 1:
        caveats = bench.get("caveats")
        if not caveats:
            return [
                "BENCH_core.json was recorded on a 1-CPU host but has no "
                "top-level 'caveats' field flagging the parallel numbers"]
    return []


def check_telemetry_budget(repo, bench):
    problems = []
    readme = read_text(repo, "README.md")
    header = read_text(repo, os.path.join("src", "obs", "telemetry.h"))
    for where, text in (("README.md", readme),
                        ("src/obs/telemetry.h", header)):
        if not re.search(r"(<=|≤)\s*2\s*%", text):
            problems.append(
                f"{where} no longer states the <= 2% disabled-telemetry "
                "budget the benchmark gate enforces")
    ctx = bench.get("context", {}).get("telemetry_overhead")
    if ctx is None:
        # Present only once bench.sh has rerun with BM_FlipTelemetry; its
        # absence is a stale-benchmarks problem, not an inconsistency.
        return problems
    m = re.search(r"(\d+(?:\.\d+)?)\s*%", ctx.get("budget", ""))
    if not m:
        problems.append(
            "BENCH_core.json telemetry_overhead has no parseable budget")
        return problems
    budget = float(m.group(1)) / 100.0
    disabled = ctx.get("disabled", {}).get("overhead_vs_BM_Flip_10")
    if disabled is None:
        problems.append(
            "BENCH_core.json telemetry_overhead records no disabled-mode "
            "measurement")
    elif disabled > budget:
        problems.append(
            f"recorded disabled-telemetry overhead {disabled:+.2%} exceeds "
            f"the {budget:.0%} budget stated alongside it")
    return problems


def check_metrics_endpoint_overhead(repo, bench):
    """README scrape-overhead claim == what bench.sh recorded, and <= 2%.

    BENCH_core.json's metrics_endpoint_overhead context carries the
    BM_GlauberRunScraped times with and without a live /metrics scraper
    plus the derived overhead fraction and its <= 2% budget. The README's
    observability section quotes that overhead; any drift (a re-run, an
    optimistic edit) is a contradiction, and the recorded overhead itself
    must stay inside the budget.
    """
    problems = []
    readme = read_text(repo, "README.md")
    ctx = bench.get("context", {}).get("metrics_endpoint_overhead")
    if ctx is None:
        # Present only once bench.sh has rerun with BM_GlauberRunScraped;
        # absence is a stale-benchmarks problem, not an inconsistency.
        return []
    unscraped = ctx.get("unscraped_ns")
    scraped = ctx.get("scraped_ns")
    overhead = ctx.get("overhead")
    if not unscraped or not scraped or overhead is None:
        return ["metrics_endpoint_overhead context is missing "
                "unscraped_ns / scraped_ns / overhead"]
    recomputed = round(scraped / unscraped - 1.0, 4)
    if abs(recomputed - overhead) > 0.00011:
        problems.append(
            f"metrics_endpoint_overhead records overhead={overhead} but "
            f"scraped/unscraped - 1 = {recomputed}")
    m = re.search(r"(\d+(?:\.\d+)?)\s*%", ctx.get("budget", ""))
    if not m:
        problems.append(
            "metrics_endpoint_overhead has no parseable '<= N%' budget")
        return problems
    budget = float(m.group(1)) / 100.0
    if overhead > budget:
        problems.append(
            f"recorded /metrics scrape overhead {overhead:+.2%} exceeds "
            f"the {budget:.0%} budget stated alongside it")
    line = next((ln for ln in readme.splitlines()
                 if "BM_GlauberRunScraped" in ln), None)
    if line is None:
        return problems + [
            "README.md never mentions BM_GlauberRunScraped, whose scrape "
            "overhead BENCH_core.json records"]
    pct = re.search(r"(-?\d+(?:\.\d+)?)\s*%", line)
    if not pct:
        problems.append(
            "README.md line naming BM_GlauberRunScraped quotes no 'N%' "
            f"overhead to check against the recorded {overhead}")
    elif abs(float(pct.group(1)) - 100.0 * overhead) > 0.06:
        problems.append(
            f"README.md claims {pct.group(1)}% scrape overhead but "
            f"BENCH_core.json records {100.0 * overhead:.2f}%")
    return problems


def check_packed_speedup(repo, bench):
    """README packed-storage speedup claims == what bench.sh recorded.

    BENCH_core.json's packed_storage context carries, per workload, the
    byte-engine time the previous PR recorded and the packed backend's
    measured speedup over it. The README quotes those speedups; any
    drift (a re-run, an optimistic edit) is a contradiction.
    """
    problems = []
    readme = read_text(repo, "README.md")
    ctx = bench.get("context", {}).get("packed_storage")
    if ctx is None:
        return ["BENCH_core.json has no packed_storage context "
                "(re-run scripts/bench.sh)"]
    vs_prior = ctx.get("packed_vs_prior_recorded_byte", {})
    if not vs_prior:
        problems.append(
            "packed_storage context records no packed_vs_prior_recorded_byte "
            "workloads")
    for workload, row in sorted(vs_prior.items()):
        prior = row.get("prior_byte_ns")
        packed = row.get("packed_ns")
        speedup = row.get("speedup")
        if prior and packed and speedup is not None:
            recomputed = round(prior / packed, 2)
            if abs(recomputed - speedup) > 0.011:
                problems.append(
                    f"{workload}: recorded packed speedup {speedup}x but "
                    f"prior_byte_ns/packed_ns = {recomputed}x")
        # The README must quote this exact speedup on the line naming the
        # workload.
        line = next((ln for ln in readme.splitlines() if workload in ln),
                    None)
        if line is None:
            problems.append(
                f"README.md never mentions {workload}, whose packed "
                "speedup BENCH_core.json records")
            continue
        m = re.search(r"(\d+(?:\.\d+)?)\s*x", line)
        if not m:
            problems.append(
                f"README.md line naming {workload} quotes no 'Nx' speedup "
                f"to check against the recorded {speedup}x")
        elif abs(float(m.group(1)) - speedup) > 0.051:
            problems.append(
                f"README.md claims {m.group(1)}x on {workload} but "
                f"BENCH_core.json records {speedup}x")
    return problems


def check_adaptive_savings(repo, bench):
    """README adaptive replica-savings claim == what bench.sh recorded.

    BENCH_core.json's adaptive_savings context carries the replica counts
    the fixed and adaptive BM_AdaptiveCampaign modes scheduled plus the
    derived savings fraction and its >= 0.30 acceptance floor. The README
    quotes the savings percentage on the line naming the benchmark; any
    drift (a re-run, an optimistic edit) is a contradiction.
    """
    problems = []
    readme = read_text(repo, "README.md")
    ctx = bench.get("context", {}).get("adaptive_savings")
    if ctx is None:
        return ["BENCH_core.json has no adaptive_savings context "
                "(re-run scripts/bench.sh)"]
    fixed = ctx.get("fixed_replicas")
    adaptive = ctx.get("adaptive_replicas")
    savings = ctx.get("savings")
    if not fixed or adaptive is None or savings is None:
        return ["adaptive_savings context is missing fixed_replicas / "
                "adaptive_replicas / savings"]
    recomputed = round(1.0 - adaptive / fixed, 3)
    if abs(recomputed - savings) > 0.0011:
        problems.append(
            f"adaptive_savings records savings={savings} but "
            f"1 - adaptive/fixed = {recomputed}")
    m = re.search(r">=\s*(0\.\d+)", ctx.get("target", ""))
    if not m:
        problems.append(
            "adaptive_savings has no parseable '>= 0.NN' target")
    elif savings < float(m.group(1)):
        problems.append(
            f"recorded adaptive savings {savings} is below the declared "
            f"target {ctx['target']!r}")
    line = next((ln for ln in readme.splitlines()
                 if "BM_AdaptiveCampaign" in ln), None)
    if line is None:
        return problems + [
            "README.md never mentions BM_AdaptiveCampaign, whose replica "
            "savings BENCH_core.json records"]
    pct = re.search(r"(\d+(?:\.\d+)?)\s*%", line)
    if not pct:
        problems.append(
            "README.md line naming BM_AdaptiveCampaign quotes no 'N%' "
            f"savings to check against the recorded {savings}")
    elif abs(float(pct.group(1)) - 100.0 * savings) > 0.6:
        problems.append(
            f"README.md claims {pct.group(1)}% replica savings but "
            f"BENCH_core.json records {100.0 * savings:.1f}%")
    return problems


def check_graph_overhead(repo, bench):
    """README torus-as-graph overhead claims == what bench.sh recorded.

    BENCH_core.json's graph_overhead context carries, per neighborhood
    radius w, the BM_FlipGraphTorus/<w> : BM_Flip/<w>/0 time ratio — what
    routing the torus through the generic CSR graph engine costs over the
    native span fast path. The README quotes those factors on the line
    naming BM_FlipGraphTorus; any drift (a re-run, an optimistic edit) is
    a contradiction.
    """
    problems = []
    readme = read_text(repo, "README.md")
    ctx = bench.get("context", {}).get("graph_overhead")
    if ctx is None:
        return ["BENCH_core.json has no graph_overhead context "
                "(re-run scripts/bench.sh)"]
    factors = ctx.get("overhead_factor_by_w", {})
    if not factors:
        return ["graph_overhead context records no overhead_factor_by_w"]
    for w, row in sorted(factors.items()):
        graph = row.get("graph_ns")
        native = row.get("native_byte_ns")
        factor = row.get("factor")
        if not graph or not native or factor is None:
            problems.append(
                f"graph_overhead at w={w} is missing graph_ns / "
                "native_byte_ns / factor")
            continue
        recomputed = round(graph / native, 2)
        if abs(recomputed - factor) > 0.011:
            problems.append(
                f"graph_overhead at w={w} records factor {factor}x but "
                f"graph_ns/native_byte_ns = {recomputed}x")
    line = next((ln for ln in readme.splitlines()
                 if "BM_FlipGraphTorus" in ln), None)
    if line is None:
        return problems + [
            "README.md never mentions BM_FlipGraphTorus, whose "
            "torus-as-graph overhead BENCH_core.json records"]
    recorded = [row.get("factor") for row in factors.values()
                if row.get("factor") is not None]
    quoted = [float(x) for x in re.findall(r"(\d+(?:\.\d+)?)\s*x", line)]
    if not quoted:
        problems.append(
            "README.md line naming BM_FlipGraphTorus quotes no 'Nx' "
            "overhead to check against the recorded factors")
    for q in quoted:
        if not any(abs(q - f) <= 0.051 for f in recorded):
            problems.append(
                f"README.md quotes {q}x on the BM_FlipGraphTorus line but "
                f"BENCH_core.json records {sorted(recorded)}")
    return problems


def check_histogram_buckets(repo, bench):
    header = read_text(repo, os.path.join("src", "obs", "telemetry.h"))
    readme = read_text(repo, "README.md")
    m = re.search(r"kHistogramBuckets\s*=\s*(\d+)", header)
    if not m:
        return ["src/obs/telemetry.h no longer defines kHistogramBuckets"]
    buckets = m.group(1)
    if f"{buckets} log2 buckets" not in readme:
        return [
            f"src/obs/telemetry.h uses {buckets} histogram buckets but "
            f"README.md does not describe '{buckets} log2 buckets'"]
    return []


CHECKS = [
    ("bench-core-present", check_bench_core),
    ("seed-baselines", check_seed_baselines),
    ("shard-coverage", check_shard_coverage),
    ("streaming-speedup", check_streaming_speedup),
    ("coverage-gate", check_coverage_gate),
    ("single-core-caveats", check_single_core_caveats),
    ("telemetry-budget", check_telemetry_budget),
    ("metrics-endpoint-overhead", check_metrics_endpoint_overhead),
    ("packed-speedup", check_packed_speedup),
    ("adaptive-savings", check_adaptive_savings),
    ("graph-overhead", check_graph_overhead),
    ("histogram-buckets", check_histogram_buckets),
]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--list", action="store_true",
                        help="list check names and exit")
    parser.add_argument("--repo", default=None,
                        help="repo root (default: parent of this script)")
    args = parser.parse_args()

    if args.list:
        for name, _ in CHECKS:
            print(name)
        return 0

    repo = args.repo or os.path.dirname(
        os.path.dirname(os.path.abspath(__file__)))
    try:
        with open(os.path.join(repo, "BENCH_core.json"),
                  encoding="utf-8") as f:
            bench = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"audit: FAIL: cannot load BENCH_core.json: {err}")
        return 1

    failures = 0
    for name, check in CHECKS:
        try:
            problems = check(repo, bench)
        except OSError as err:
            problems = [f"cannot read a file this check needs: {err}"]
        if problems:
            failures += len(problems)
            for problem in problems:
                print(f"audit: FAIL [{name}]: {problem}")
        else:
            print(f"audit: ok   [{name}]")

    if failures:
        print(f"audit: {failures} contradiction(s) between docs, "
              "BENCH_core.json, and source")
        return 1
    print("audit: all claims consistent")
    return 0


if __name__ == "__main__":
    sys.exit(main())
